"""The ``python -m repro lint`` command implementation.

Kept separate from :mod:`repro.cli` so the analyzer stays importable
without the simulation stack (and vice versa).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from .baseline import load_baseline, partition, save_baseline
from .engine import analyze_tree
from .reporters import LintResult, render_json, render_text
from .rules import get_rule, rule_ids

__all__ = ["run_lint", "add_lint_arguments"]

DEFAULT_BASELINE = "statan-baseline.json"


def add_lint_arguments(parser) -> None:
    """Attach lint options to an argparse (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: ./src if present, else .)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print baselined findings in the text report",
    )
    # SUPPRESS so this subcommand flag never clobbers the root parser's
    # global --n-jobs when the user writes `repro --n-jobs 4 lint`.
    parser.add_argument(
        "--n-jobs", type=int, default=argparse.SUPPRESS, metavar="N",
        help="worker processes for the per-file rules (default: "
        "$REPRO_N_JOBS, else serial; <= 0 means all cores); the report "
        "is byte-identical at any worker count",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="scope per-file rules to files changed vs git HEAD "
        "(untracked included); whole-program rules still see the full "
        "tree, and the stale-baseline check is skipped",
    )


def _default_paths() -> list[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def _git_changed_files() -> list[str] | None:
    """Repo-relative paths changed vs HEAD plus untracked files, or
    None when git is unavailable (not a checkout, no HEAD yet)."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True, text=True, check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    listed = diff.stdout.splitlines() + untracked.stdout.splitlines()
    files = {f for f in listed if f.endswith(".py")}
    return sorted(files)


def _changed_labels(paths: list[str]) -> set[str] | None:
    """Map git-changed files onto the scan-relative labels
    :func:`~repro.statan.engine.iter_python_files` produces for
    ``paths`` (directory roots are stripped; direct file arguments keep
    their basename label)."""
    changed = _git_changed_files()
    if changed is None:
        return None
    labels: set[str] = set()
    for raw in changed:
        file = Path(raw)
        for root_raw in paths:
            root = Path(root_raw)
            if root.is_dir():
                try:
                    labels.add(file.relative_to(root).as_posix())
                except ValueError:
                    continue
            elif file == root:
                labels.add(root.name)
    return labels


def run_lint(args) -> int:
    if args.list_rules:
        for rule_id in rule_ids():
            rule = get_rule(rule_id)
            print(f"{rule.id}  [{rule.severity}]  {rule.summary}")
        return 0

    paths = args.paths or _default_paths()
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such file or directory: {path}", file=sys.stderr)
            return 2

    if args.changed and args.update_baseline:
        print("error: --update-baseline needs a full run, not --changed",
              file=sys.stderr)
        return 2

    per_file_labels = None
    if args.changed:
        per_file_labels = _changed_labels(paths)
        if per_file_labels is None:
            print("warning: git unavailable; linting the full tree",
                  file=sys.stderr)

    # The subcommand flag is SUPPRESSed so a global `repro --n-jobs N`
    # shows through; absent both, None means $REPRO_N_JOBS-or-serial.
    n_jobs = getattr(args, "n_jobs", None)
    findings, stats = analyze_tree(
        paths, n_jobs=n_jobs, per_file_labels=per_file_labels
    )

    if args.update_baseline:
        save_baseline(args.baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.baseline}",
            file=sys.stderr,
        )
        return 0

    baseline = load_baseline(args.baseline)
    new, grandfathered, stale = partition(findings, baseline)
    if per_file_labels is not None:
        # A scoped run does not see every file's findings, so absent
        # fingerprints say nothing about the baseline being stale.
        stale = []
    result = LintResult(
        new, grandfathered, stale, stats.get("files", 0),
        stats=stats, baseline_path=args.baseline,
    )
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose_baseline=args.show_baselined))
    return result.exit_code
