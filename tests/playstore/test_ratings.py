"""Tests for aggregate-rating recomputation."""

import pytest

from repro.playstore.catalog import Catalog
from repro.playstore.ratings import RatingAggregator
from repro.playstore.reviews import ReviewStore


@pytest.fixture()
def setup(rng):
    catalog = Catalog(rng)
    store = ReviewStore()
    aggregator = RatingAggregator(catalog, store)
    return catalog, store, aggregator


class TestRatingAggregator:
    def test_five_star_campaign_raises_obscure_app(self, setup):
        catalog, store, aggregator = setup
        app = catalog.add_promoted_app()
        before = catalog.get(app.package).aggregate_rating
        for i in range(60):
            store.post_review(app.package, f"g{i}", 5, float(i))
        update = aggregator.recompute(app.package)
        assert update.after > before
        assert catalog.get(app.package).aggregate_rating == update.after

    def test_popular_app_barely_moves(self, setup):
        catalog, store, aggregator = setup
        app = catalog.add_popular_app()  # >= 15k historical reviews
        for i in range(60):
            store.post_review(app.package, f"g{i}", 5, float(i))
        update = aggregator.recompute(app.package)
        assert abs(update.delta) < 0.05

    def test_review_bombing_lowers_rating(self, setup):
        catalog, store, aggregator = setup
        app = catalog.add_promoted_app()
        before = catalog.get(app.package).aggregate_rating
        for i in range(80):
            store.post_review(app.package, f"g{i}", 1, float(i))
        update = aggregator.recompute(app.package)
        assert update.after < before

    def test_rating_stays_in_range(self, setup):
        catalog, store, aggregator = setup
        app = catalog.add_promoted_app()
        for i in range(200):
            store.post_review(app.package, f"g{i}", 5, float(i))
        update = aggregator.recompute(app.package)
        assert 1.0 <= update.after <= 5.0

    def test_baseline_frozen_at_first_sight(self, setup):
        """Repeated recomputation must not compound the live reviews."""
        catalog, store, aggregator = setup
        app = catalog.add_promoted_app()
        for i in range(30):
            store.post_review(app.package, f"g{i}", 5, float(i))
        first = aggregator.recompute(app.package)
        second = aggregator.recompute(app.package)
        assert second.after == pytest.approx(first.after)

    def test_recompute_all_covers_reviewed_apps(self, setup):
        catalog, store, aggregator = setup
        apps = [catalog.add_promoted_app() for _ in range(3)]
        store.post_review(apps[0].package, "g1", 5, 0.0)
        store.post_review(apps[2].package, "g1", 4, 0.0)
        updates = aggregator.recompute_all()
        assert {u.package for u in updates} == {apps[0].package, apps[2].package}

    def test_biggest_movers_sorted(self, setup):
        catalog, store, aggregator = setup
        quiet = catalog.add_promoted_app()
        loud = catalog.add_promoted_app()
        store.post_review(quiet.package, "g1", 5, 0.0)
        for i in range(100):
            store.post_review(loud.package, f"g{i}", 5, float(i))
        movers = aggregator.biggest_movers(k=2)
        assert abs(movers[0].delta) >= abs(movers[1].delta)
