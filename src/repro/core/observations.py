"""Device observations: the analysis-facing view of collected data.

Everything in §6-§8 is computed from what RacketStore *collected* — the
snapshot records ingested by the server, the Play reviews fetched by the
review crawler, and the Gmail→Google-ID mappings from the ID crawler —
never from simulator ground truth.  :class:`DeviceObservation` bundles
those sources for one participant device and exposes the derived
quantities the measurements and feature extractors need.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..frames import ColumnFrame, ColumnRun, FrameRow
from ..platform.store import ColumnarCollection
from ..playstore.reviews import Review
from ..simulation.clock import SECONDS_PER_DAY
from ..simulation.world import Participant, StudyData

__all__ = ["DeviceObservation", "build_observations"]


def _partition_runs(
    frame: ColumnFrame, order_field: str
) -> dict[str, ColumnRun]:
    """install_id -> zero-copy :class:`ColumnRun`, sorted by
    ``order_field``.

    One stable argsort over the whole column reproduces, for every
    install at once, exactly what ``sorted(find({install_id: ...}),
    key=order_field)`` returns per install: ascending ``order_field``
    with insertion order breaking ties.  No per-row view objects are
    materialized — each install gets a position run whose column
    slices the accessors consume directly.
    """
    ids = frame.values("install_id")
    order = np.argsort(frame.column(order_field), kind="stable")
    grouped: dict[str, list[int]] = {}
    for position in order.tolist():
        grouped.setdefault(ids[position], []).append(position)
    return {
        install_id: ColumnRun(frame, positions)
        for install_id, positions in grouped.items()
    }


def _first_rows(frame: ColumnFrame) -> dict[str, FrameRow]:
    """install_id -> view of its first inserted row (``find_one``)."""
    ids = frame.values("install_id")
    first: dict[str, FrameRow] = {}
    for position, install_id in enumerate(ids):
        if install_id not in first:
            first[install_id] = FrameRow(frame, position)
    return first


def _typed_run(runs) -> ColumnRun | None:
    """``runs`` as a :class:`ColumnRun` over a *typed* frame, else
    ``None`` — the gate for the vectorized accessor paths.  Dict-backend
    lists, truncated copies, and degraded generic frames (where a
    missing key must honour ``.get`` defaults) all take the scalar
    per-row path instead."""
    if isinstance(runs, ColumnRun) and runs.frame.schema is not None:
        return runs
    return None


def _snapshot_total(runs) -> int:
    """Sum of ``1 + (end - start) // period`` over the runs.

    The vectorized branch is exact: numpy's float64 ``floor_divide``
    matches CPython's ``//`` result bit for bit, and truncating the
    already-floored quotient equals ``int(...)``.
    """
    run = _typed_run(runs)
    if run is None:
        return sum(
            1 + int((r["end"] - r["start"]) // r["period"]) for r in runs
        )
    if not len(run):
        return 0
    counts = (run.column("end") - run.column("start")) // run.column("period")
    return int(len(run) + counts.astype(np.int64).sum())


def _snapshot_getters(data: StudyData):
    """Per-install accessors for (initial, slow, fast, app_changes).

    Columnar store: one pass per collection builds every install's
    zero-copy view list.  Dict store: fall back to the server's indexed
    per-install queries.  Both yield rows in identical order.
    """
    server = data.server
    names = ("initial_snapshots", "slow_runs", "fast_runs", "app_changes")
    collections = [server.store[name] for name in names]
    if not all(isinstance(c, ColumnarCollection) for c in collections):
        return (
            server.initial_snapshot,
            server.slow_runs,
            server.fast_runs,
            server.app_changes,
        )
    initial_c, slow_c, fast_c, changes_c = collections
    initial_map = _first_rows(initial_c.frame)
    slow_map = _partition_runs(slow_c.frame, "start")
    fast_map = _partition_runs(fast_c.frame, "start")
    change_map = _partition_runs(changes_c.frame, "timestamp")
    return (
        initial_map.get,
        lambda install_id: slow_map.get(install_id, []),
        lambda install_id: fast_map.get(install_id, []),
        lambda install_id: change_map.get(install_id, []),
    )


@dataclass
class DeviceObservation:
    """All collected data for one device, with derived accessors.

    The snapshot runs are read-only row sequences: plain dict lists
    when the store runs the dict backend, zero-copy
    :class:`~repro.frames.ColumnRun` position runs over the ingest
    frames when it runs the columnar backend.  Every accessor produces
    identical values either way; the hot ones (snapshot totals,
    foreground usage, app-change scans) read whole column slices off a
    typed run instead of touching rows one by one.
    """

    participant: Participant
    install_id: str
    initial: Mapping | None
    slow_runs: Sequence[Mapping]
    fast_runs: Sequence[Mapping]
    app_changes: Sequence[Mapping]
    #: Google IDs of the Gmail accounts seen in slow snapshots, resolved
    #: through the ID crawler (§5).
    google_ids: frozenset[str]
    #: package -> time-ordered reviews from this device's accounts.
    device_reviews: dict[str, list[Review]] = field(default_factory=dict)
    #: every review posted by this device's accounts (any app).
    all_account_reviews: list[Review] = field(default_factory=list)

    # -- study window -----------------------------------------------------
    @property
    def installed_at(self) -> float:
        return self.participant.app.installed_at or 0.0

    @property
    def uninstalled_at(self) -> float:
        if self.participant.app.uninstalled_at is not None:
            return self.participant.app.uninstalled_at
        return (
            self.participant.enrolled_day + self.participant.active_days
        ) * SECONDS_PER_DAY

    @property
    def active_days(self) -> int:
        if self._active_days_override is not None:
            return self._active_days_override
        return self.participant.active_days

    @property
    def is_worker(self) -> bool:
        """Ground-truth cohort label (used only for training/eval)."""
        return self.participant.is_worker

    # -- accounts (from slow snapshots) ------------------------------------
    @cached_property
    def reported_accounts(self) -> tuple[tuple[str, str], ...]:
        """Accounts from the latest slow run that carried the permission."""
        run = _typed_run(self.slow_runs)
        if run is not None:
            frame = run.frame
            permissions = frame.values("accounts_permission")
            accounts = frame.values("accounts")
            for position in reversed(run.positions.tolist()):
                if permissions[position] and accounts[position]:
                    return tuple(tuple(pair) for pair in accounts[position])
            return ()
        for run in reversed(self.slow_runs):
            if run.get("accounts_permission", True) and run["accounts"]:
                return tuple(tuple(pair) for pair in run["accounts"])
        return ()

    @property
    def reported_account_data(self) -> bool:
        """Whether GET_ACCOUNTS data ever arrived for this device."""
        run = _typed_run(self.slow_runs)
        if run is not None:
            return bool(len(run)) and bool(
                run.column("accounts_permission").any()
            )
        return any(run.get("accounts_permission", True) for run in self.slow_runs)

    @cached_property
    def gmail_addresses(self) -> tuple[str, ...]:
        return tuple(
            identifier
            for service, identifier in self.reported_accounts
            if service == "com.google"
        )

    @property
    def n_gmail_accounts(self) -> int:
        return len(self.gmail_addresses)

    @property
    def n_non_gmail_accounts(self) -> int:
        return len(self.reported_accounts) - self.n_gmail_accounts

    @property
    def n_account_types(self) -> int:
        return len({service for service, _ in self.reported_accounts})

    # -- installed apps (from initial snapshot + change events) ------------
    @cached_property
    def initial_apps(self) -> list[dict]:
        if not self.initial:
            return []
        return list(self.initial["installed_apps"])

    @cached_property
    def initial_packages(self) -> frozenset[str]:
        return frozenset(a["package"] for a in self.initial_apps)

    @property
    def n_installed_apps(self) -> int:
        return len(self.initial_apps)

    @property
    def n_preinstalled(self) -> int:
        return sum(1 for a in self.initial_apps if a["preinstalled"])

    @property
    def n_user_installed(self) -> int:
        return self.n_installed_apps - self.n_preinstalled

    @cached_property
    def stopped_apps_first(self) -> tuple[str, ...]:
        """Stopped-app list from the first slow snapshot (enrollment state)."""
        for run in self.slow_runs:
            return tuple(run["stopped_apps"])
        return ()

    def _change_cells(self, *fields: str) -> zip | None:
        """Parallel raw-value streams over the app-change run, or
        ``None`` when the events are not a typed run (scalar path)."""
        run = _typed_run(self.app_changes)
        if run is None:
            return None
        return zip(*(run.cells(name) for name in fields))

    @cached_property
    def install_times(self) -> dict[str, float]:
        """package -> last known Android install time (initial snapshot,
        overridden by any install events during the study)."""
        times = {a["package"]: a["install_time"] for a in self.initial_apps}
        cells = self._change_cells("action", "package", "install_time")
        if cells is not None:
            for action, package, install_time in cells:
                if action == "install" and install_time is not None:
                    times[package] = install_time
            return times
        for event in self.app_changes:
            if event["action"] == "install" and event.get("install_time") is not None:
                times[event["package"]] = event["install_time"]
        return times

    @cached_property
    def apk_hashes(self) -> dict[str, str]:
        hashes = {
            a["package"]: a["apk_hash"] for a in self.initial_apps if a["apk_hash"]
        }
        cells = self._change_cells("action", "package", "apk_hash")
        if cells is not None:
            for action, package, apk_hash in cells:
                if action == "install" and apk_hash:
                    hashes[package] = apk_hash
            return hashes
        for event in self.app_changes:
            if event["action"] == "install" and event.get("apk_hash"):
                hashes[event["package"]] = event["apk_hash"]
        return hashes

    @cached_property
    def observed_packages(self) -> frozenset[str]:
        """Every package seen installed at any point during the study."""
        packages = set(self.initial_packages)
        cells = self._change_cells("action", "package")
        if cells is not None:
            packages.update(
                package for action, package in cells if action == "install"
            )
        else:
            packages.update(
                e["package"] for e in self.app_changes if e["action"] == "install"
            )
        return frozenset(packages)

    def _event_counts(self, wanted: str) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        cells = self._change_cells("action", "package")
        if cells is not None:
            for action, package in cells:
                if action == wanted:
                    counts[package] += 1
        else:
            for event in self.app_changes:
                if event["action"] == wanted:
                    counts[event["package"]] += 1
        return dict(counts)

    @cached_property
    def install_event_counts(self) -> dict[str, int]:
        return self._event_counts("install")

    @cached_property
    def uninstall_event_counts(self) -> dict[str, int]:
        return self._event_counts("uninstall")

    @property
    def daily_installs(self) -> float:
        return sum(self.install_event_counts.values()) / max(self.active_days, 1)

    @property
    def daily_uninstalls(self) -> float:
        return sum(self.uninstall_event_counts.values()) / max(self.active_days, 1)

    # -- usage (from fast snapshots) ------------------------------------------
    @cached_property
    def foreground_days(self) -> dict[str, set[int]]:
        """package -> set of day indexes on which it held the foreground."""
        out: dict[str, set[int]] = defaultdict(set)
        run = _typed_run(self.fast_runs)
        if run is not None:
            if len(run):
                packages = run.cells("foreground")
                firsts = (
                    (run.column("start") // SECONDS_PER_DAY)
                    .astype(np.int64)
                    .tolist()
                )
                lasts = (
                    (run.column("end") // SECONDS_PER_DAY)
                    .astype(np.int64)
                    .tolist()
                )
                for package, first, last in zip(packages, firsts, lasts):
                    if package is None:
                        continue
                    days = out[package]
                    for day in range(first, last + 1):
                        days.add(day)
        else:
            for run in self.fast_runs:
                package = run["foreground"]
                if package is None:
                    continue
                first = int(run["start"] // SECONDS_PER_DAY)
                last = int(run["end"] // SECONDS_PER_DAY)
                for day in range(first, last + 1):
                    out[package].add(day)
        return dict(out)

    @cached_property
    def foreground_snapshots(self) -> dict[str, int]:
        """package -> total number of fast snapshots with it on screen."""
        out: dict[str, int] = defaultdict(int)
        run = _typed_run(self.fast_runs)
        if run is not None:
            if len(run):
                packages = run.cells("foreground")
                counts = (
                    (
                        (run.column("end") - run.column("start"))
                        // run.column("period")
                    )
                    .astype(np.int64)
                    .tolist()
                )
                for package, count in zip(packages, counts):
                    if package is None:
                        continue
                    out[package] += 1 + count
        else:
            for run in self.fast_runs:
                package = run["foreground"]
                if package is None:
                    continue
                out[package] += 1 + int((run["end"] - run["start"]) // run["period"])
        return dict(out)

    @property
    def apps_used_per_day(self) -> float:
        if not self.foreground_days:
            return 0.0
        day_sets: dict[int, set[str]] = defaultdict(set)
        for package, day_indexes in self.foreground_days.items():
            for day in day_indexes:
                day_sets[day].add(package)
        if not day_sets:
            return 0.0
        return sum(len(s) for s in day_sets.values()) / max(self.active_days, 1)

    @cached_property
    def total_snapshots(self) -> int:
        return _snapshot_total(self.fast_runs) + _snapshot_total(self.slow_runs)

    @property
    def snapshots_per_day(self) -> float:
        return self.total_snapshots / max(self.active_days, 1)

    # -- reviews (from crawlers) ----------------------------------------------
    def reviews_for_app(self, package: str) -> list[Review]:
        """Reviews for ``package`` from accounts on this device."""
        return self.device_reviews.get(package, [])

    @property
    def apps_reviewed_total(self) -> int:
        """Distinct apps reviewed from the device's accounts (Fig 6 right
        counts reviews; this counts apps — both are exposed)."""
        return len({r.app_package for r in self.all_account_reviews})

    @property
    def total_account_reviews(self) -> int:
        return len(self.all_account_reviews)

    @property
    def n_installed_and_reviewed(self) -> int:
        """Apps currently installed that were reviewed from the device."""
        return sum(
            1 for package in self.initial_packages if self.device_reviews.get(package)
        )

    def truncated(self, days: float) -> "DeviceObservation":
        """A copy of this observation limited to the first ``days`` of
        the study window — used to ask how much telemetry the detector
        needs (the paper keeps only devices with >= 2 days of snapshots).

        Reviews are not truncated: the Play-side review history is
        available regardless of how long RacketStore ran.
        """
        cutoff = self.installed_at + days * SECONDS_PER_DAY
        clipped = DeviceObservation(
            participant=self.participant,
            install_id=self.install_id,
            initial=self.initial,
            slow_runs=[
                {**run, "end": min(run["end"], cutoff)}
                for run in self.slow_runs
                if run["start"] < cutoff
            ],
            fast_runs=[
                {**run, "end": min(run["end"], cutoff)}
                for run in self.fast_runs
                if run["start"] < cutoff
            ],
            app_changes=[
                event for event in self.app_changes if event["timestamp"] < cutoff
            ],
            google_ids=self.google_ids,
            device_reviews=self.device_reviews,
            all_account_reviews=self.all_account_reviews,
        )
        clipped._active_days_override = max(1, int(min(days, self.active_days)))
        return clipped

    _active_days_override: int | None = None

    def install_to_review_days(self, package: str) -> list[float]:
        """Positive install-to-review intervals for one app (§6.3: reviews
        predating the last install are discarded)."""
        install_time = self.install_times.get(package)
        if install_time is None:
            return []
        return [
            (review.timestamp - install_time) / SECONDS_PER_DAY
            for review in self.reviews_for_app(package)
            if review.timestamp > install_time
        ]


def build_observations(
    data: StudyData, participants: list[Participant] | None = None
) -> list[DeviceObservation]:
    """Assemble observations for (by default) every participant.

    Resolves Gmail addresses to Google IDs through the ID crawler and
    joins the review store by Google ID, exactly like the paper's
    backend (§5).
    """
    participants = participants if participants is not None else data.participants
    initial_for, slow_for, fast_for, changes_for = _snapshot_getters(data)
    observations: list[DeviceObservation] = []
    for participant in participants:
        install_id = participant.app.install_id
        if install_id is None:
            continue
        obs = DeviceObservation(
            participant=participant,
            install_id=install_id,
            initial=initial_for(install_id),
            slow_runs=slow_for(install_id),
            fast_runs=fast_for(install_id),
            app_changes=changes_for(install_id),
            google_ids=frozenset(),
        )
        # Resolve Gmail -> Google ID through the crawler.
        ids = {
            google_id
            for email in obs.gmail_addresses
            if (google_id := data.id_crawler.lookup(email)) is not None
        }
        obs.google_ids = frozenset(ids)
        # Join reviews by Google ID (the §5 "reviews posted by accounts
        # registered on participant devices" dataset).
        per_app: dict[str, list[Review]] = defaultdict(list)
        all_reviews: list[Review] = []
        # Sorted: per_app's key insertion order (hence device_reviews'
        # key order) must not depend on per-process set/hash ordering.
        for google_id in sorted(ids):
            for review in data.review_store.reviews_by_google_id(google_id):
                per_app[review.app_package].append(review)
                all_reviews.append(review)
        obs.device_reviews = {
            package: sorted(reviews) for package, reviews in per_app.items()
        }
        obs.all_account_reviews = sorted(all_reviews)
        observations.append(obs)
    return observations
