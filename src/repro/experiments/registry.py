"""Registry mapping experiment ids to their runners.

One entry per table/figure the paper's evaluation reports (DESIGN.md §4
holds the full index).  ``run_experiment`` is the single entry point the
benchmark harness and examples call.
"""

from __future__ import annotations

from typing import Callable

from .. import obs
from ..parallel import parallel_map, resolve_n_jobs
from ..simulation.config import SimulationConfig
from .classifiers import (
    run_fig13_app_importance,
    run_fig14_device_importance,
    run_fig15_suspiciousness,
    run_table1_app_classifier,
    run_table2_device_classifier,
    run_table3_pii_registry,
)
from .common import ExperimentReport, Workbench, shared_workbench
from .measurements import (
    run_fig00_dataset_overview,
    run_fig01_timelines,
    run_fig04_engagement,
    run_fig05_accounts,
    run_fig06_installed_reviewed,
    run_fig07_install_to_review,
    run_fig08_stopped_apps,
    run_fig09_churn,
    run_fig10_daily_use,
    run_fig11_permissions,
    run_fig12_malware,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_many", "run_all"]

EXPERIMENTS: dict[str, Callable[[Workbench], ExperimentReport]] = {
    "fig00": run_fig00_dataset_overview,
    "fig01": run_fig01_timelines,
    "fig04": run_fig04_engagement,
    "fig05": run_fig05_accounts,
    "fig06": run_fig06_installed_reviewed,
    "fig07": run_fig07_install_to_review,
    "fig08": run_fig08_stopped_apps,
    "fig09": run_fig09_churn,
    "fig10": run_fig10_daily_use,
    "fig11": run_fig11_permissions,
    "fig12": run_fig12_malware,
    "table1": run_table1_app_classifier,
    "fig13": run_fig13_app_importance,
    "table2": run_table2_device_classifier,
    "fig14": run_fig14_device_importance,
    "fig15": run_fig15_suspiciousness,
    "table3": run_table3_pii_registry,
}


def run_experiment(experiment_id: str, workbench: Workbench | None = None) -> ExperimentReport:
    """Run one experiment against a (shared by default) workbench."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    workbench = workbench or shared_workbench()
    duration = obs.histogram(
        "experiment_seconds",
        {"experiment": experiment_id},
        help="per-experiment wall time",
    )
    with obs.timer(duration) as timed, obs.trace(f"experiment.{experiment_id}"):
        report = EXPERIMENTS[experiment_id](workbench)
    obs.get_logger("experiments").info(
        "experiment_complete", id=experiment_id, seconds=round(timed.elapsed, 3)
    )
    return report


# Per-process workbench cache for experiment-cell workers, keyed by the
# (frozen, hashable) simulation config.  Each worker process lazily
# builds at most one workbench per config; with the fork start method it
# additionally shares the parent's already-simulated study copy-on-write.
_WORKBENCHES: dict[SimulationConfig, Workbench] = {}


def _cell_workbench(config: SimulationConfig) -> Workbench:
    workbench = _WORKBENCHES.get(config)
    if workbench is None:
        workbench = _WORKBENCHES[config] = Workbench(config)
    return workbench


def _run_cell(experiment_id: str, config: SimulationConfig) -> ExperimentReport:
    """One experiment cell, runnable in a worker process.

    Every report is a pure function of ``config`` (simulation, pipeline,
    and experiment maths are all seeded from it), so cells computed in
    different processes are byte-identical to a serial run.
    """
    return run_experiment(experiment_id, _cell_workbench(config))


def run_many(
    experiment_ids: list[str] | tuple[str, ...],
    workbench: Workbench | None = None,
    n_jobs: int | None = None,
) -> list[ExperimentReport]:
    """Run several experiment cells, optionally across worker processes.

    Reports come back in ``experiment_ids`` order regardless of which
    cell finishes first.  Determinism contract (DESIGN.md §8): each cell
    derives everything from the workbench's frozen config, so the worker
    count never changes a report.  Worker-side metrics (``ml_fit_seconds``
    etc.) are merged back into the parent registry.
    """
    unknown = [eid for eid in experiment_ids if eid not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown!r}; known: {sorted(EXPERIMENTS)}")
    workbench = workbench or shared_workbench()
    if resolve_n_jobs(n_jobs) == 1 or len(experiment_ids) < 2:
        return [run_experiment(eid, workbench) for eid in experiment_ids]
    # Warm the simulation before fan-out: with fork workers the study is
    # then shared copy-on-write instead of re-simulated per worker.
    workbench.data
    _WORKBENCHES.setdefault(workbench.config, workbench)
    return parallel_map(
        _run_cell,
        [(eid, workbench.config) for eid in experiment_ids],
        n_jobs=n_jobs,
    )


def run_all(
    workbench: Workbench | None = None, n_jobs: int | None = None
) -> list[ExperimentReport]:
    """Run every registered experiment in id order."""
    return run_many(list(EXPERIMENTS), workbench=workbench, n_jobs=n_jobs)
