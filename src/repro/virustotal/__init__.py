"""Simulated VirusTotal substrate: a 62-engine scanning panel and a
report client with the paper's hash-availability characteristics."""

from .client import ClientStats, VirusTotalClient
from .engines import N_ENGINES, Engine, EnginePanel, ScanResult

__all__ = [
    "ClientStats",
    "VirusTotalClient",
    "N_ENGINES",
    "Engine",
    "EnginePanel",
    "ScanResult",
]
