"""The paper's primary contribution: app/device usage features (§7.1,
§8.1), the §7.2 labeling rules, the app and device classifiers, the
end-to-end detection pipeline, and the §9 privacy-preserving on-device
detector."""

from .app_classifier import (
    APP_ALGORITHMS,
    AppClassifier,
    AppClassifierEvaluation,
    evaluate_app_algorithms,
)
from .app_features import (
    APP_FEATURE_NAMES,
    NEVER_REVIEWED_SENTINEL_DAYS,
    app_feature_vector,
    extract_app_features,
)
from .baselines import (
    BaselineVerdict,
    BurstDetector,
    LockstepDetector,
    evaluate_baseline_on_devices,
)
from .datasets import (
    AppDataset,
    AppInstance,
    DeviceDataset,
    build_app_dataset,
    build_device_dataset,
)
from .device_classifier import (
    DEVICE_ALGORITHMS,
    DeviceClassifier,
    DeviceClassifierEvaluation,
    evaluate_device_algorithms,
)
from .device_features import (
    DEVICE_FEATURE_NAMES,
    device_feature_vector,
    extract_device_features,
)
from .labeling import LabelingConfig, LabelingResult, label_apps, split_holdout
from .model_io import export_detector, import_detector
from .observations import DeviceObservation, build_observations
from .thresholds import (
    OperatingPoint,
    precision_recall_curve,
    sweep_operating_points,
    threshold_for_fpr,
    threshold_for_precision,
)
from .ondevice import OnDeviceDetector, OnDeviceReport
from .pipeline import DetectionPipeline, DeviceVerdict, PipelineResult

__all__ = [
    "APP_ALGORITHMS",
    "AppClassifier",
    "AppClassifierEvaluation",
    "evaluate_app_algorithms",
    "APP_FEATURE_NAMES",
    "NEVER_REVIEWED_SENTINEL_DAYS",
    "BaselineVerdict",
    "BurstDetector",
    "LockstepDetector",
    "evaluate_baseline_on_devices",
    "export_detector",
    "import_detector",
    "app_feature_vector",
    "extract_app_features",
    "AppDataset",
    "AppInstance",
    "DeviceDataset",
    "build_app_dataset",
    "build_device_dataset",
    "DEVICE_ALGORITHMS",
    "DeviceClassifier",
    "DeviceClassifierEvaluation",
    "evaluate_device_algorithms",
    "DEVICE_FEATURE_NAMES",
    "device_feature_vector",
    "extract_device_features",
    "LabelingConfig",
    "LabelingResult",
    "label_apps",
    "split_holdout",
    "DeviceObservation",
    "OperatingPoint",
    "precision_recall_curve",
    "sweep_operating_points",
    "threshold_for_fpr",
    "threshold_for_precision",
    "build_observations",
    "OnDeviceDetector",
    "OnDeviceReport",
    "DetectionPipeline",
    "DeviceVerdict",
    "PipelineResult",
]
