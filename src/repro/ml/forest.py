"""Random Forest classifier (bagged CART trees with feature subsampling).

Used for the "RF" rows of Tables 1 and 2, and — because the paper measures
variable importance by *mean decrease in Gini* [Breiman 2001] — as the
importance estimator behind Figures 13 and 14.

Trees are independent once their bootstrap sample and seed are fixed, so
``fit`` fans tree growth out across worker processes when ``n_jobs > 1``.
Determinism contract (DESIGN.md §8): every bootstrap sample and per-tree
seed is drawn from ``random_state`` *before* any fan-out, in the exact
order the serial loop has always drawn them, and trees (with their
out-of-bag votes and Gini importances) are merged back in tree order —
the same seed yields byte-identical forests at any worker count.
"""

from __future__ import annotations

import numpy as np

from ..parallel import draw_seeds, parallel_map
from .base import BaseEstimator, ClassifierMixin, check_array, check_random_state, check_X_y
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


def _fit_tree(
    X: np.ndarray,
    encoded: np.ndarray,
    sample: np.ndarray,
    seed: int,
    params: dict,
    n_classes: int,
    bootstrap: bool,
) -> tuple[DecisionTreeClassifier, np.ndarray | None, np.ndarray | None]:
    """Grow one pre-seeded tree; return it with its out-of-bag votes."""
    tree = DecisionTreeClassifier(random_state=seed, **params)
    # Fit on encoded labels so every tree shares the class space even if
    # a bootstrap sample misses a class.
    tree.fit(X[sample], encoded[sample], sample_classes=n_classes)
    if not bootstrap:
        return tree, None, None
    oob = np.setdiff1d(np.arange(X.shape[0]), np.unique(sample))
    if not oob.size:
        return tree, oob, None
    return tree, oob, tree.predict_proba(X[oob])


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bootstrap-aggregated CART trees.

    Parameters mirror the usual conventions: ``n_estimators`` trees, each
    fit on a bootstrap sample with ``max_features`` features considered
    per split (default ``"sqrt"``).  ``feature_importances_`` averages the
    per-tree mean decrease in Gini, matching the measure in Figs. 13/14.
    ``n_jobs`` controls per-tree fit parallelism (``None`` →
    ``REPRO_N_JOBS`` → serial; ``<= 0`` → all cores) without changing a
    single output bit.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
        n_jobs: int | None = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.n_jobs = n_jobs

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        self.n_features_ = X.shape[1]
        rng = check_random_state(self.random_state)
        n = X.shape[0]

        # Pre-draw every tree's bootstrap sample and seed before any
        # fan-out, preserving the serial draw order (sample then seed,
        # per tree) so results never depend on the worker count.
        samples: list[np.ndarray] = []
        seeds: list[int] = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                samples.append(rng.integers(0, n, size=n))
            else:
                samples.append(np.arange(n))
            seeds.extend(draw_seeds(rng, 1))

        params = {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }
        n_classes = len(self.classes_)
        fitted = parallel_map(
            _fit_tree,
            [
                (X, encoded, samples[i], seeds[i], params, n_classes, self.bootstrap)
                for i in range(self.n_estimators)
            ],
            n_jobs=self.n_jobs,
        )

        self.estimators_ = []
        self._oob_votes = np.zeros((n, n_classes), dtype=np.float64)
        self._oob_counts = np.zeros(n, dtype=np.int64)
        self._oob_truth = encoded
        # Collection is in submission (= tree) order, so vote/importance
        # accumulation reproduces the serial float-summation order.
        for tree, oob, oob_proba in fitted:
            self.estimators_.append(tree)
            if oob is not None and oob.size:
                self._oob_votes[oob] += oob_proba
                self._oob_counts[oob] += 1
        return self

    def predict_proba(self, X) -> np.ndarray:
        X = check_array(X)
        proba = np.zeros((X.shape[0], len(self.classes_)), dtype=np.float64)
        for tree in self.estimators_:
            proba += tree.predict_proba(X)
        return proba / len(self.estimators_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Forest-averaged mean decrease in Gini, normalised to sum to 1."""
        total = np.zeros(self.n_features_, dtype=np.float64)
        for tree in self.estimators_:
            total += tree.feature_importances_
        total /= len(self.estimators_)
        s = total.sum()
        return total / s if s else total

    def oob_score(self) -> float:
        """Out-of-bag accuracy over samples that were left out at least once."""
        seen = self._oob_counts > 0
        if not seen.any():
            raise RuntimeError("no out-of-bag samples; was bootstrap=False?")
        votes = np.argmax(self._oob_votes[seen], axis=1)
        return float(np.mean(votes == self._oob_truth[seen]))
