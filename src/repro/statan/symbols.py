"""Project-wide symbol table: every function, method and class by
qualified name.

Phase one of the whole-program pass (DESIGN.md §10) walks each indexed
module once and records

* **functions** — module-level ``def``s as ``module.name``;
* **methods** — ``module.Class.name`` with the owning class recorded so
  ``self.helper()`` dispatch can resolve;
* **nested functions** — ``module.outer.<locals>.name``, flagged
  ``is_nested`` (they close over the enclosing frame and cannot be
  pickled by qualified name — the PAR rules lean on this);
* **classes** — base-class expressions kept as dotted strings so the
  call graph can chase one level of inheritance.

Resolution is name-based and *approximate*: a dotted import target is
matched against known qualified names by suffix, so ``from .helpers
import jitter`` inside ``repro.simulation`` finds
``repro.simulation.helpers.jitter`` without package-path arithmetic.
Dynamic constructs (``getattr``, function tables, ``exec``) are
invisible — see DESIGN.md §10 for the documented soundness holes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from .engine import ModuleContext

__all__ = ["FunctionInfo", "ClassInfo", "SymbolTable", "module_name_for"]


def module_name_for(label: str) -> str:
    """Dotted module name for a scan-relative file label.

    ``repro/ml/forest.py`` → ``repro.ml.forest``;
    ``repro/frames/__init__.py`` → ``repro.frames``.
    """
    parts = list(PurePosixPath(label).parts)
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = last
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One ``def`` (function, method, or nested function)."""

    qualname: str
    module: str
    name: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    parent: str | None = None       # enclosing function qualname, if nested
    decorators: tuple[str, ...] = ()

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def params(self) -> tuple[str, ...]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return tuple(names)

    def span(self) -> tuple[int, int]:
        return (self.node.lineno, getattr(self.node, "end_lineno", self.node.lineno))


@dataclass
class ClassInfo:
    """One ``class`` statement and its directly declared methods."""

    qualname: str
    module: str
    name: str
    path: str
    bases: tuple[str, ...] = ()             # dotted base expressions, raw
    methods: dict[str, str] = field(default_factory=dict)  # bare -> qualname


def _dotted(node: ast.AST) -> str | None:
    """Source-level dotted text of a Name/Attribute chain (unresolved)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


class SymbolTable:
    """All functions/classes across the indexed modules, by qualname."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: (module, bare name) -> qualname for module-level functions.
        self.module_functions: dict[tuple[str, str], str] = {}
        #: bare method name -> sorted qualnames (approximate dispatch).
        self.methods_by_name: dict[str, list[str]] = {}
        #: (module, bare name) -> class qualname for module-level classes.
        self.module_classes: dict[tuple[str, str], str] = {}
        #: module -> sorted function qualnames defined in it.
        self.by_module: dict[str, list[str]] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, modules: list["ModuleContext"]) -> "SymbolTable":
        table = cls()
        for ctx in sorted(modules, key=lambda m: m.path):
            table._index_module(ctx)
        for names in table.methods_by_name.values():
            names.sort()
        for names in table.by_module.values():
            names.sort()
        return table

    def _index_module(self, ctx: "ModuleContext") -> None:
        module = ctx.module
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, stmt, prefix=module)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(ctx, stmt, prefix=module)

    def _add_class(self, ctx: "ModuleContext", node: ast.ClassDef, prefix: str) -> None:
        qualname = f"{prefix}.{node.name}"
        bases = tuple(b for b in (_dotted(base) for base in node.bases) if b)
        info = ClassInfo(
            qualname=qualname,
            module=ctx.module,
            name=node.name,
            path=ctx.path,
            bases=bases,
        )
        self.classes[qualname] = info
        self.module_classes[(ctx.module, node.name)] = qualname
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._add_function(
                    ctx, stmt, prefix=qualname, class_name=node.name
                )
                info.methods[stmt.name] = method.qualname
                self.methods_by_name.setdefault(stmt.name, []).append(method.qualname)

    def _add_function(
        self,
        ctx: "ModuleContext",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        class_name: str | None = None,
        parent: str | None = None,
    ) -> FunctionInfo:
        qualname = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=ctx.module,
            name=node.name,
            path=ctx.path,
            node=node,
            class_name=class_name,
            parent=parent,
            decorators=tuple(
                d for d in (_dotted(dec) for dec in node.decorator_list) if d
            ),
        )
        self.functions[qualname] = info
        self.by_module.setdefault(ctx.module, []).append(qualname)
        if class_name is None and parent is None:
            self.module_functions[(ctx.module, node.name)] = qualname
        # Nested defs are symbols of their own (callable locally, never
        # picklable); one level of <locals> nesting is enough in practice.
        for stmt in ast.walk(node):
            if stmt is node or not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            nested_qual = f"{qualname}.<locals>.{stmt.name}"
            if nested_qual in self.functions:
                continue
            self.functions[nested_qual] = FunctionInfo(
                qualname=nested_qual,
                module=ctx.module,
                name=stmt.name,
                path=ctx.path,
                node=stmt,
                class_name=class_name,
                parent=qualname,
            )
            self.by_module.setdefault(ctx.module, []).append(nested_qual)
        return info

    # -- queries ------------------------------------------------------------
    def resolve_dotted(self, dotted: str) -> list[str]:
        """Qualnames whose path matches ``dotted`` on a suffix boundary.

        ``helpers.jitter`` matches ``pkg.helpers.jitter``; exact matches
        win outright.  Classes resolve to their ``__init__`` when they
        have one (a constructor call enters that body).
        """
        if dotted in self.functions:
            return [dotted]
        if dotted in self.classes:
            init = self.classes[dotted].methods.get("__init__")
            return [init] if init else []
        tail = "." + dotted
        hits = sorted(q for q in self.functions if q.endswith(tail))
        if hits:
            return hits
        class_hits = sorted(q for q in self.classes if q.endswith(tail))
        out = []
        for qual in class_hits:
            init = self.classes[qual].methods.get("__init__")
            if init:
                out.append(init)
        return out

    def resolve_class(self, module: str, dotted: str) -> ClassInfo | None:
        """Class named by ``dotted`` as seen from ``module`` (local name
        or import-resolved dotted path), if indexed."""
        local = self.module_classes.get((module, dotted))
        if local:
            return self.classes[local]
        if dotted in self.classes:
            return self.classes[dotted]
        tail = "." + dotted
        hits = sorted(q for q in self.classes if q.endswith(tail))
        return self.classes[hits[0]] if hits else None

    def method_on(self, klass: ClassInfo, name: str) -> str | None:
        """Resolve ``name`` on ``klass`` or (one level of) its bases."""
        if name in klass.methods:
            return klass.methods[name]
        for base in klass.bases:
            base_cls = self.resolve_class(klass.module, base.split(".")[-1])
            if base_cls is not None and name in base_cls.methods:
                return base_cls.methods[name]
        return None

    def function_at(self, path: str, line: int) -> FunctionInfo | None:
        """Innermost indexed function whose span contains ``path:line``."""
        best: FunctionInfo | None = None
        best_size = -1
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            if info.path != path:
                continue
            lo, hi = info.span()
            if lo <= line <= hi:
                size = hi - lo
                if best is None or size < best_size:
                    best, best_size = info, size
        return best

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    def __len__(self) -> int:
        return len(self.functions)
