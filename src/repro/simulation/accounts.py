"""Account generation: Gmail and third-party service accounts on devices.

§6.2: a user must have a Gmail account to review, one review per app per
account — so workers register many Gmail accounts (mean 28.87/device)
while regular users keep a couple plus many *types* of social accounts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..playstore.google_id import GmailDirectory
from .personas import Persona

__all__ = ["DeviceAccount", "AccountFactory"]

_FIRST = ("ali", "sana", "ayesha", "imran", "farhan", "nadia", "rahul", "priya",
          "arjun", "kavya", "tanvir", "mitu", "sajid", "rumana", "omar", "zara",
          "bilal", "hina", "dev", "isha", "kamal", "lubna", "noor", "raza")
_LAST = ("khan", "ahmed", "patel", "sharma", "hossain", "rahman", "iqbal",
         "das", "roy", "begum", "chowdhury", "malik", "shaikh", "kumar",
         "gupta", "akhtar", "uddin", "bibi", "singh", "islam")


@dataclass(frozen=True, slots=True)
class DeviceAccount:
    """One account registered on a device: a (service, identifier) pair.

    For Gmail accounts ``identifier`` is the address and ``google_id``
    the Play-review identity; for other services ``google_id`` is None.
    """

    service: str
    identifier: str
    google_id: str | None = None

    @property
    def is_gmail(self) -> bool:
        return self.service == "com.google"


class AccountFactory:
    """Mints unique Gmail addresses (registered with the directory) and
    persona-appropriate third-party service accounts."""

    def __init__(self, directory: GmailDirectory, rng: np.random.Generator) -> None:
        self._directory = directory
        self._rng = rng
        self._counter = itertools.count(1)

    def new_gmail(self) -> DeviceAccount:
        first = self._rng.choice(_FIRST)
        last = self._rng.choice(_LAST)
        email = f"{first}.{last}{next(self._counter)}@gmail.com"
        google_id = self._directory.register(email)
        return DeviceAccount(service="com.google", identifier=email, google_id=google_id)

    def accounts_for_persona(self, persona: Persona) -> list[DeviceAccount]:
        """Draw the full account set for a fresh device."""
        accounts = [self.new_gmail() for _ in range(persona.sample_gmail_accounts(self._rng))]
        for service in persona.sample_services(self._rng):
            accounts.append(
                DeviceAccount(service=service, identifier=f"user{next(self._counter)}")
            )
        return accounts
