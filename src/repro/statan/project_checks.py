"""Whole-program rules: determinism taint and parallel-capture safety.

========  ============================================================
DET004    entry-point code transitively reaching a nondeterminism sink
PAR001    unsafe callable submitted to a parallel executor
PAR002    worker randomness not passed as an explicit pre-drawn seed
========  ============================================================

These run once per lint against the
:class:`~repro.statan.project.ProjectContext` (DESIGN.md §10).  The PAR
rules encode the :mod:`repro.parallel` executor contract (DESIGN.md
§8): jobs must be module-level picklable functions, closed over nothing
mutable, with every RNG seed pre-drawn by the parent and passed as an
explicit argument.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from .callgraph import _body_walk
from .dataflow import ENTRY_PACKAGES, TaintAnalysis
from .engine import ModuleContext, matches_tail
from .findings import Finding
from .rules import ProjectRule, register_project
from .symbols import FunctionInfo

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from .project import ProjectContext

__all__ = [
    "InterproceduralDeterminism",
    "ParallelCaptureSafety",
    "ParallelSeedDiscipline",
]

#: Callables that submit jobs to worker processes: ``parallel_map(fn,
#: tasks)`` and ``<executor>.map(fn, tasks)``.
_EXECUTOR_FACTORIES = ("ProcessExecutor", "SerialExecutor", "get_executor")

#: Parameter names that satisfy the explicit-seed contract.
_SEED_PARAM_HINTS = ("rng", "random_state")

#: Call tails that produce a ``numpy.random.Generator``.
_GENERATOR_SOURCES = ("default_rng", "check_random_state")


def _in_entry_package(info: FunctionInfo) -> bool:
    from pathlib import PurePosixPath

    return any(seg in ENTRY_PACKAGES for seg in PurePosixPath(info.path).parts)


@register_project
class InterproceduralDeterminism(ProjectRule):
    """DET004: a simulation/ML/analysis/experiment function reaches an
    unseeded-RNG, wall-clock, or unordered-iteration sink through one or
    more call hops.

    The per-file DET rules flag the sink line itself; this rule flags
    the *entry-domain caller* whose output the sink corrupts, with the
    concrete call chain in the message.  Suppressed sink lines and the
    exempt ``obs`` package do not taint (reviewed code stays reviewed).
    """

    id = "DET004"
    summary = "entry-point code transitively reaches a nondeterministic sink"

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        taint = TaintAnalysis(project)
        if not taint.sinks_by_function:
            return
        for info in project.symbols.iter_functions():
            if not _in_entry_package(info) or taint.is_sink(info.qualname):
                continue
            ctx = project.by_path.get(info.path)
            if ctx is None:
                continue
            for site in project.callgraph.callees(info.qualname):
                if not taint.is_tainted(site.callee):
                    continue
                witness = taint.chain_to_sink(site.callee)
                if witness is None:
                    continue
                chain, sink = witness
                hops = " -> ".join([info.qualname, *chain])
                yield Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=info.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"reaches a {sink.rule} sink through {hops}: "
                        f"'{sink.snippet}' ({sink.path}:{sink.line}); thread "
                        "an injected rng/clock through the call chain instead"
                    ),
                    snippet=ctx.snippet(site.line),
                )


class _SubmissionSite:
    """One ``parallel_map``/``executor.map`` call inside a function."""

    __slots__ = ("call", "fn", "tasks", "owner")

    def __init__(
        self,
        call: ast.Call,
        fn: ast.AST | None,
        tasks: ast.AST | None,
        owner: FunctionInfo,
    ) -> None:
        self.call = call
        self.fn = fn
        self.tasks = tasks
        self.owner = owner


def _executor_vars(info: FunctionInfo, ctx: ModuleContext) -> set[str]:
    """Local names bound from an executor factory call."""
    out: set[str] = set()
    for node in _body_walk(info.node):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        resolved = ctx.resolve(func) or (
            func.id if isinstance(func, ast.Name) else None
        )
        if any(matches_tail(resolved, tail) for tail in _EXECUTOR_FACTORIES):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out


def _submission_sites(
    project: "ProjectContext",
) -> Iterator[tuple[ModuleContext, _SubmissionSite]]:
    """Every statically visible job submission, in deterministic order."""
    for info in project.symbols.iter_functions():
        ctx = project.by_path.get(info.path)
        if ctx is None:
            continue
        executors = _executor_vars(info, ctx)
        for node in _body_walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            resolved = ctx.resolve(func) or (
                func.id if isinstance(func, ast.Name) else None
            )
            submits = matches_tail(resolved, "parallel_map")
            if not submits and isinstance(func, ast.Attribute) and func.attr == "map":
                recv = func.value
                if isinstance(recv, ast.Name) and recv.id in executors:
                    submits = True
                elif isinstance(recv, ast.Call):
                    recv_resolved = ctx.resolve(recv.func) or (
                        recv.func.id if isinstance(recv.func, ast.Name) else None
                    )
                    submits = any(
                        matches_tail(recv_resolved, tail)
                        for tail in _EXECUTOR_FACTORIES
                    )
            if submits:
                fn = node.args[0] if node.args else None
                tasks = node.args[1] if len(node.args) > 1 else None
                yield ctx, _SubmissionSite(node, fn, tasks, info)


def _resolve_worker(
    project: "ProjectContext", ctx: ModuleContext, owner: FunctionInfo, name: str
) -> FunctionInfo | None:
    """The module-level function a submitted Name refers to, if any."""
    symbols = project.symbols
    local = symbols.module_functions.get((ctx.module, name))
    if local:
        return symbols.functions[local]
    imported = ctx.imports.get(name)
    if imported:
        hits = symbols.resolve_dotted(imported)
        for qual in hits:
            info = symbols.functions.get(qual)
            if info is not None and not info.is_nested and not info.is_method:
                return info
    return None


def _module_level_mutables(ctx: ModuleContext) -> set[str]:
    """Module-global names bound to mutable containers at top level."""
    mutables: set[str] = set()
    mutable_calls = ("list", "dict", "set", "defaultdict", "Counter", "deque")
    for stmt in ctx.tree.body:
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        is_mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        )
        if not is_mutable and isinstance(value, ast.Call):
            func = value.func
            bare = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            is_mutable = bare in mutable_calls
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables.add(target.id)
    return mutables


_ACCUMULATING_METHODS = frozenset({"append", "extend", "add", "update", "insert"})


def _global_accumulations(
    worker: FunctionInfo, worker_ctx: ModuleContext
) -> list[tuple[str, int]]:
    """(name, line) pairs where the worker accumulates into a module
    global.  Plain reads and per-process memo caches (subscript stores)
    are allowed — results that must flow back do so via return values.
    """
    mutables = _module_level_mutables(worker_ctx)
    if not mutables:
        return []
    locals_: set[str] = set(worker.params)
    for node in _body_walk(worker.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    locals_.add(target.id)
    hits: list[tuple[str, int]] = []
    for node in _body_walk(worker.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ACCUMULATING_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            name = node.func.value.id
            if name in mutables and name not in locals_:
                hits.append((name, node.lineno))
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            name = node.target.id
            if name in mutables and name not in locals_:
                hits.append((name, node.lineno))
    return sorted(hits)


def _generator_locals(info: FunctionInfo, ctx: ModuleContext) -> set[str]:
    """Local names (including parameters) holding a numpy Generator."""
    out: set[str] = set()
    args = info.node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        annotation = arg.annotation
        annotated = False
        if annotation is not None:
            dotted = ctx.resolve(annotation) or (
                annotation.id if isinstance(annotation, ast.Name) else None
            )
            annotated = matches_tail(dotted, "Generator") or (
                dotted is not None and dotted.endswith("random.Generator")
            )
        if annotated or arg.arg == "rng":
            out.add(arg.arg)
    for node in _body_walk(info.node):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        resolved = ctx.resolve(func) or (
            func.id if isinstance(func, ast.Name) else None
        )
        from_source = any(
            matches_tail(resolved, tail) for tail in _GENERATOR_SOURCES
        )
        spawned = isinstance(func, ast.Attribute) and func.attr == "spawn"
        for target in node.targets:
            if isinstance(target, ast.Name) and (
                from_source or spawned or target.id == "rng"
            ):
                out.add(target.id)
    return out


def _uses_randomness(worker: FunctionInfo, worker_ctx: ModuleContext) -> bool:
    """Whether the worker's own body draws or constructs randomness."""
    for node in _body_walk(worker.node):
        if not isinstance(node, ast.Call):
            continue
        resolved = worker_ctx.resolve(node.func) or (
            node.func.id if isinstance(node.func, ast.Name) else None
        )
        if resolved is None:
            continue
        if resolved == "random" or resolved.startswith(("random.", "numpy.random")):
            return True
        if matches_tail(resolved, "default_rng"):
            return True
    return False


def _takes_explicit_seed(worker: FunctionInfo) -> bool:
    return any(
        "seed" in param or param in _SEED_PARAM_HINTS for param in worker.params
    )


def _project_finding(
    rule: ProjectRule, ctx: ModuleContext, node: ast.AST, message: str
) -> Finding:
    line = getattr(node, "lineno", 1)
    return Finding(
        rule=rule.id,
        severity=rule.severity,
        path=ctx.path,
        line=line,
        col=getattr(node, "col_offset", 0),
        message=message,
        snippet=ctx.snippet(line),
    )


@register_project
class ParallelCaptureSafety(ProjectRule):
    """PAR001: callables shipped to worker processes must be module-level
    functions closed over nothing.

    Lambdas and nested ``def``s cannot be pickled by qualified name and
    silently capture enclosing state; module-level workers that
    accumulate into a module-global container lose those writes when
    the worker process exits (results must travel via return values —
    the executor contract, DESIGN.md §8).
    """

    id = "PAR001"
    summary = "unsafe callable submitted to a parallel executor"

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        for ctx, site in _submission_sites(project):
            fn = site.fn
            if fn is None:
                continue
            if isinstance(fn, ast.Lambda):
                yield _project_finding(
                    self, ctx, fn,
                    "lambda submitted to a parallel executor is not "
                    "picklable and closes over the enclosing frame; use a "
                    "module-level worker function",
                )
                continue
            if not isinstance(fn, ast.Name):
                continue
            nested_qual = f"{site.owner.qualname}.<locals>.{fn.id}"
            nested = project.symbols.functions.get(nested_qual)
            if nested is not None:
                captured = self._captured_names(site.owner, nested)
                generators = sorted(
                    captured & _generator_locals(site.owner, ctx)
                )
                detail = (
                    f" (captures Generator {', '.join(repr(g) for g in generators)})"
                    if generators
                    else (f" (captures {', '.join(sorted(captured))})" if captured else "")
                )
                yield _project_finding(
                    self, ctx, fn,
                    f"nested function '{fn.id}' submitted to a parallel "
                    f"executor cannot be pickled{detail}; hoist it to module "
                    "level and pass state through the task tuple",
                )
                continue
            worker = _resolve_worker(project, ctx, site.owner, fn.id)
            if worker is None:
                continue
            worker_ctx = project.by_path.get(worker.path)
            if worker_ctx is None:
                continue
            for name, line in _global_accumulations(worker, worker_ctx):
                yield _project_finding(
                    self, ctx, fn,
                    f"worker '{worker.qualname}' accumulates into module "
                    f"global '{name}' ({worker.path}:{line}); worker-side "
                    "writes are lost on process exit — return the values "
                    "instead",
                )

    def _captured_names(
        self, owner: FunctionInfo, nested: FunctionInfo
    ) -> set[str]:
        """Free names of the nested def that are locals of the owner."""
        owner_locals: set[str] = set(owner.params)
        for node in _body_walk(owner.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        owner_locals.add(target.id)
        inner_bound: set[str] = set(nested.params)
        loads: set[str] = set()
        for node in ast.walk(nested.node):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    inner_bound.add(node.id)
                else:
                    loads.add(node.id)
        return (loads - inner_bound) & owner_locals


@register_project
class ParallelSeedDiscipline(ProjectRule):
    """PAR002: worker randomness must arrive as an explicit pre-drawn
    seed, never as a shipped ``Generator``.

    A Generator passed in a task tuple is pickled by state: the parent's
    instance never advances, and every worker that receives the same
    object draws identical streams — both silently break the
    seeds-before-fan-out contract.  Workers that draw randomness must
    take a ``seed``/``rng`` parameter filled from
    ``repro.parallel.seeding.draw_seeds``.
    """

    id = "PAR002"
    summary = "parallel worker randomness without an explicit seed parameter"

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        for ctx, site in _submission_sites(project):
            generators = _generator_locals(site.owner, ctx)
            if site.tasks is not None and generators:
                flagged: set[str] = set()
                for node in ast.walk(site.tasks):
                    if (
                        isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in generators
                        and node.id not in flagged
                    ):
                        flagged.add(node.id)
                        yield _project_finding(
                            self, ctx, node,
                            f"task arguments ship Generator '{node.id}' to "
                            "worker processes; pre-draw integer seeds with "
                            "repro.parallel.seeding.draw_seeds and pass "
                            "those instead",
                        )
            if not isinstance(site.fn, ast.Name):
                continue
            worker = _resolve_worker(project, ctx, site.owner, site.fn.id)
            if worker is None:
                continue
            worker_ctx = project.by_path.get(worker.path)
            if worker_ctx is None:
                continue
            if _uses_randomness(worker, worker_ctx) and not _takes_explicit_seed(
                worker
            ):
                yield _project_finding(
                    self, ctx, site.fn,
                    f"worker '{worker.qualname}' draws randomness but takes "
                    "no explicit seed parameter; pass a pre-drawn seed "
                    "through the task tuple (seeds-before-fan-out contract)",
                )
