"""Report rendering helpers shared by benchmarks and examples, plus
raw figure-data CSV export for external plotting."""

from .series import export_figure_data
from .tables import format_value, paper_vs_measured_rows, render_table

__all__ = ["export_figure_data", "format_value", "paper_vs_measured_rows", "render_table"]
