"""Phase-split engine: action logs, frozen views, commit, invariance.

The tentpole contract of the two-phase day engine (DESIGN.md §12) in
four parts: action logs are emitted in a deterministic order, phase-1
devices never observe same-day cross-device effects (frozen-view
staleness), the phase-2 commit is idempotent under replay, and the full
study output is byte-identical at any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark import study_digest
from repro.experiments import run_experiment
from repro.experiments.common import Workbench
from repro.platform.buffer import chunk_hash
from repro.playstore.catalog import Catalog
from repro.playstore.reviews import ReviewStore
from repro.simulation import SECONDS_PER_DAY, SimulationConfig, run_study
from repro.simulation.campaigns import CampaignBoard
from repro.simulation.device import SimDevice
from repro.simulation.phases import (
    ActionLog,
    ChunkUpload,
    DeviceDayResult,
    PromoDelivery,
    RecordingUplink,
    ReviewPost,
    ShardBoardView,
    commit_day,
)


@pytest.fixture()
def board_with_campaign():
    """A board with exactly one campaign (3 installs, 1 review)."""
    rng = np.random.default_rng(7)
    catalog = Catalog(rng)
    app = catalog.add_promoted_app()
    board = CampaignBoard(rng)
    campaign = board.post_campaign(
        app, target_installs=3, target_reviews=1, retention_days=7.0
    )
    return board, campaign


def _result(device_id: str, actions, index: int = 0) -> DeviceDayResult:
    return DeviceDayResult(
        index=index,
        device_id=device_id,
        device=None,
        app_state=None,
        pending=(),
        reviewed={},
        actions=tuple(actions),
    )


class TestActionLog:
    def test_seq_numbers_follow_emission_order(self):
        log = ActionLog()
        log.post_review("com.a", "gid1", 5, 100.0)
        log.promo_delivery(3, wants_review=True)
        log.upload_chunk("fast", b"payload")
        log.register_install("100001", "inst", "android", 0.0)
        log.post_review("com.b", "gid2", 4, 200.0)
        assert [action.seq for action in log.actions] == [0, 1, 2, 3, 4]

    def test_recording_uplink_acks_like_the_real_server(self):
        log = ActionLog()
        uplink = RecordingUplink(log)
        ack = uplink.receive_chunk("fast", b"some-bytes")
        assert ack == chunk_hash(b"some-bytes")
        (action,) = log.actions
        assert isinstance(action, ChunkUpload)
        assert action.kind == "fast" and action.data == b"some-bytes"

    def test_uplink_registration_is_logged_not_applied(self):
        log = ActionLog()
        uplink = RecordingUplink(log)
        assert uplink.is_valid_participant("100001")
        uplink.register_install("100001", "inst01", "android01", 5.0)
        (action,) = log.actions
        assert action.install_id == "inst01"


class TestFrozenViewStaleness:
    def test_view_does_not_see_same_day_cross_device_takes(
        self, board_with_campaign
    ):
        board, campaign = board_with_campaign
        frozen = board.freeze()
        # Another device's same-day deliveries exhaust the live board...
        for _ in range(campaign.target_installs):
            assert board.apply_delivery(campaign.campaign_id)
        assert board.next_job() is None
        # ...but a view over the start-of-day snapshot still offers work.
        view = ShardBoardView(frozen)
        job = view.next_job(np.random.default_rng(0))
        assert job is not None and job.campaign_id == campaign.campaign_id

    def test_own_takes_reduce_the_local_overlay(self, board_with_campaign):
        board, campaign = board_with_campaign
        view = ShardBoardView(board.freeze())
        rng = np.random.default_rng(0)
        jobs = [view.next_job(rng) for _ in range(campaign.target_installs)]
        assert all(job is not None for job in jobs)
        assert view.next_job(rng) is None  # overlay exhausted
        # Live board untouched by phase 1: deliveries land at commit.
        assert campaign.delivered_installs == 0

    def test_review_quota_tracked_in_the_overlay(self, board_with_campaign):
        board, campaign = board_with_campaign  # 1 review target
        view = ShardBoardView(board.freeze())
        rng = np.random.default_rng(0)
        wants = [view.next_job(rng).wants_review for _ in range(3)]
        assert wants == [True, False, False]

    def test_day_view_starts_with_empty_day_logs(self):
        rng = np.random.default_rng(3)
        catalog = Catalog(rng)
        app = catalog.add_popular_app()
        device = SimDevice(persona_kind="regular", is_worker=False, rng=rng)
        device.install(app, timestamp=-100.0, grant_probability=1.0, rng=rng)
        device.open_app(app.package, 500.0, 60.0)
        view = device.day_view(SECONDS_PER_DAY)
        assert view.events == [] and view.sessions == []
        assert view.installed is device.installed  # shared, not copied
        assert view.device_id == device.device_id

    def test_day_view_carries_sessions_spilling_past_midnight(self):
        rng = np.random.default_rng(3)
        catalog = Catalog(rng)
        app = catalog.add_popular_app()
        device = SimDevice(persona_kind="regular", is_worker=False, rng=rng)
        device.install(app, timestamp=-100.0, grant_probability=1.0, rng=rng)
        # Ends before midnight: not carried.  Spills past midnight: carried.
        device.open_app(app.package, SECONDS_PER_DAY - 5000.0, 600.0)
        device.open_app(app.package, SECONDS_PER_DAY - 100.0, 300.0)
        view = device.day_view(SECONDS_PER_DAY)
        assert [s.start for s in view.prior_sessions] == [SECONDS_PER_DAY - 100.0]

    def test_absorb_day_folds_the_view_back(self):
        rng = np.random.default_rng(3)
        catalog = Catalog(rng)
        app = catalog.add_popular_app()
        device = SimDevice(persona_kind="regular", is_worker=False, rng=rng)
        device.install(app, timestamp=-100.0, grant_probability=1.0, rng=rng)
        view = device.day_view(0.0)
        view.open_app(app.package, 1000.0, 120.0)
        events_before = len(device.events)
        device.absorb_day(view)
        assert len(device.events) == events_before + 1
        assert device.sessions[-1].start == 1000.0


class TestCommit:
    def test_commit_applies_logs_in_device_id_order(self):
        store = ReviewStore()
        board = CampaignBoard(np.random.default_rng(0))
        results = [
            _result("devB", [ReviewPost(0, "com.x", "gidB", 5, 50.0)], index=1),
            _result("devA", [ReviewPost(0, "com.x", "gidA", 4, 60.0)], index=0),
        ]
        commit_day(results, board=board, review_store=store, server=None)
        by_id = sorted(store.reviews_for_app("com.x"), key=lambda r: r.review_id)
        # devA's log replays first despite being submitted second.
        assert [r.google_id for r in by_id] == ["gidA", "gidB"]

    def test_replaying_logs_is_idempotent(self, board_with_campaign):
        board, campaign = board_with_campaign
        store = ReviewStore()
        results = [
            _result(
                "devA",
                [
                    ReviewPost(0, campaign.app_package, "gid1", 5, 10.0),
                    PromoDelivery(1, campaign.campaign_id, wants_review=True),
                    PromoDelivery(2, campaign.campaign_id, wants_review=False),
                ],
            )
        ]
        for _ in range(2):
            commit_day(results, board=board, review_store=store, server=None)
        # The review is a keyed upsert; replay does not duplicate it.
        assert store.total_reviews() == 1
        # 2 deliveries x 2 replays = 4 takes, clamped to the 3-install
        # target; the single review take replays as a no-op too.
        assert campaign.delivered_installs == 3
        assert campaign.delivered_reviews == 1

    def test_overshoot_never_exceeds_campaign_targets(self, board_with_campaign):
        board, campaign = board_with_campaign
        # Two devices each took 3 jobs from the same frozen snapshot.
        results = [
            _result(
                device_id,
                [
                    PromoDelivery(seq, campaign.campaign_id, wants_review=seq == 0)
                    for seq in range(3)
                ],
            )
            for device_id in ("devA", "devB")
        ]
        commit_day(results, board=board, review_store=ReviewStore(), server=None)
        assert campaign.delivered_installs == campaign.target_installs
        assert campaign.delivered_reviews == campaign.target_reviews


class TestShardCountInvariance:
    """Seeded randomized replay: the same study at n_jobs 1, 2 and max
    must be byte-identical — store contents, review corpus, device
    state, rank series (all via :func:`study_digest`) and the rendered
    report of a downstream experiment."""

    @pytest.fixture(scope="class")
    def replay_runs(self):
        # A randomized-but-seeded replay seed, distinct from the default
        # study fixture's, so the invariance claim is not tied to the
        # one calibrated world realization.
        replay_seed = int(np.random.default_rng(20211102).integers(2**31))
        config = SimulationConfig.small().scaled(seed=replay_seed)
        return [run_study(config, n_jobs=n_jobs) for n_jobs in (1, 2, 0)]

    def test_study_digest_invariant_across_worker_counts(self, replay_runs):
        digests = {study_digest(data) for data in replay_runs}
        assert len(digests) == 1

    def test_review_corpus_invariant(self, replay_runs):
        corpora = []
        for data in replay_runs:
            corpora.append(
                [
                    (r.app_package, r.google_id, r.rating, r.timestamp)
                    for package in sorted(data.review_crawler.tracked_apps())
                    for r in data.review_store.reviews_for_app(package)
                ]
            )
        assert corpora[0] == corpora[1] == corpora[2]

    def test_rendered_report_invariant(self, replay_runs):
        def render(data):
            workbench = Workbench(data.config)
            workbench.__dict__["data"] = data  # inject the finished run
            return run_experiment("fig07", workbench).render()

        reports = [render(data) for data in replay_runs]
        assert reports[0] == reports[1] == reports[2]
