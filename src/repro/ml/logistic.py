"""L2-regularised logistic regression ("LR" in Table 1).

Trained by full-batch Newton-Raphson (IRLS) with a gradient-descent
fallback when the Hessian is ill-conditioned.  Inputs are standardised
internally so the optimiser is insensitive to the wildly different
feature scales produced by the usage features (seconds vs counts).
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Binary logistic regression with L2 penalty.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger = less regularised).
    max_iter, tol:
        Newton iteration budget and convergence threshold on the
        gradient's infinity norm.
    standardize:
        Whether to z-score features internally (recommended; the public
        coefficient accessors fold the scaling back out).
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 100,
        tol: float = 1e-8,
        standardize: bool = True,
    ) -> None:
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.standardize = standardize

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) == 1:
            self._mu = np.zeros(X.shape[1])
            self._sigma = np.ones(X.shape[1])
            self.coef_ = np.zeros(X.shape[1])
            self.intercept_ = 50.0 if self.classes_[0] == 1 else -50.0
            return self
        if len(self.classes_) != 2:
            raise ValueError("LogisticRegression is binary-only")
        target = encoded.astype(np.float64)

        if self.standardize:
            self._mu = X.mean(axis=0)
            sigma = X.std(axis=0)
            sigma[sigma == 0.0] = 1.0
            self._sigma = sigma
        else:
            self._mu = np.zeros(X.shape[1])
            self._sigma = np.ones(X.shape[1])
        Z = (X - self._mu) / self._sigma

        n, d = Z.shape
        design = np.column_stack([np.ones(n), Z])
        alpha = 1.0 / self.C
        # Do not penalise the intercept.
        penalty = np.full(d + 1, alpha)
        penalty[0] = 0.0

        w = np.zeros(d + 1)
        self.n_iter_ = 0
        for _ in range(self.max_iter):
            self.n_iter_ += 1
            p = _sigmoid(design @ w)
            gradient = design.T @ (p - target) + penalty * w
            if np.max(np.abs(gradient)) < self.tol:
                break
            weights = np.clip(p * (1.0 - p), 1e-10, None)
            hessian = (design * weights[:, None]).T @ design + np.diag(penalty + 1e-10)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = gradient / (np.linalg.norm(gradient) + 1e-12)
            w -= step

        self._w = w
        self.intercept_ = float(w[0] - np.sum(w[1:] * self._mu / self._sigma))
        self.coef_ = w[1:] / self._sigma
        return self

    def decision_function(self, X) -> np.ndarray:
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        if len(self.classes_) == 1:
            X = check_array(X)
            return np.ones((X.shape[0], 1), dtype=np.float64)
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])
