"""Shared result types for the §6 measurement analyses."""

from __future__ import annotations

from dataclasses import dataclass

from ..statstests import EffectSizes, SignificanceBattery, Summary, compare_groups, effect_sizes, summarize

__all__ = ["GroupComparison", "compare_feature"]


@dataclass(frozen=True)
class GroupComparison:
    """One worker-vs-regular feature comparison in the paper's format:
    per-group descriptive summaries plus the three-test battery."""

    feature: str
    worker: Summary
    regular: Summary
    tests: SignificanceBattery
    effects: EffectSizes

    def significant(self, alpha: float = 0.05) -> bool:
        return self.tests.all_significant(alpha)

    def paper_style_rows(self) -> list[str]:
        return [
            f"{self.feature} [worker]  : {self.worker.paper_style()}",
            f"{self.feature} [regular] : {self.regular.paper_style()}",
            f"  KS p={self.tests.ks.pvalue:.3g}, ANOVA p={self.tests.anova.pvalue:.3g}, "
            f"Kruskal p={self.tests.kruskal.pvalue:.3g}",
            f"  effect: Cliff's delta={self.effects.cliffs_delta:+.2f} "
            f"({self.effects.magnitude()}), Cohen's d={self.effects.cohens_d:+.2f}",
        ]


def compare_feature(feature: str, worker_values, regular_values) -> GroupComparison:
    """Summaries + KS/ANOVA/Kruskal battery for one feature."""
    worker_values = list(worker_values)
    regular_values = list(regular_values)
    return GroupComparison(
        feature=feature,
        worker=summarize(worker_values),
        regular=summarize(regular_values),
        tests=compare_groups(feature, worker_values, regular_values),
        effects=effect_sizes(worker_values, regular_values),
    )
