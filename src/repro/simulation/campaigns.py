"""ASO campaigns and the communication board that distributes them.

§2: developers hire ASO organisations; admins post jobs to communication
boards (Facebook/WhatsApp/Telegram groups); workers pick up jobs that
specify installs, retention intervals and high-rated reviews.  The board
is also the source of the §7.2 suspicious-app labels: "it was advertised
by workers for promotion on the Facebook groups we infiltrated".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..playstore.catalog import App

__all__ = ["Campaign", "CampaignBoard", "PromoJob", "FrozenCampaign", "FrozenBoard"]


@dataclass(slots=True)
class Campaign:
    """One paid promotion engagement for one app."""

    campaign_id: int
    app_package: str
    target_installs: int
    target_reviews: int
    min_rating: int = 4
    retention_days: float = 7.0
    pay_per_install_usd: float = 0.35
    pay_per_review_usd: float = 0.70
    delivered_installs: int = 0
    delivered_reviews: int = 0

    @property
    def installs_remaining(self) -> int:
        return max(0, self.target_installs - self.delivered_installs)

    @property
    def reviews_remaining(self) -> int:
        return max(0, self.target_reviews - self.delivered_reviews)

    @property
    def complete(self) -> bool:
        return self.installs_remaining == 0 and self.reviews_remaining == 0

    @property
    def payout_usd(self) -> float:
        """Total worker earnings the campaign has paid out so far."""
        return (
            self.delivered_installs * self.pay_per_install_usd
            + self.delivered_reviews * self.pay_per_review_usd
        )


@dataclass(frozen=True, slots=True)
class PromoJob:
    """One unit of work handed to a worker: install (and maybe review)."""

    campaign_id: int
    app_package: str
    wants_review: bool
    min_rating: int
    retention_days: float


@dataclass(frozen=True, slots=True)
class FrozenCampaign:
    """Start-of-day image of one campaign (phase-1 read view)."""

    campaign_id: int
    app_package: str
    installs_remaining: int
    reviews_remaining: int
    min_rating: int
    retention_days: float


@dataclass(frozen=True, slots=True)
class FrozenBoard:
    """Immutable start-of-day view of the whole board, id-ordered.

    Shipped to every phase-1 shard so job selection reads the same
    state regardless of which worker (or how many workers) runs the
    device — the frozen-view half of the determinism contract.
    """

    campaigns: tuple[FrozenCampaign, ...]


class CampaignBoard:
    """The Facebook-group-like job board.

    Tracks every campaign ever advertised (``advertised_packages`` feeds
    the suspicious-label rule) and hands out jobs, preferring campaigns
    with the most remaining work so installs spread across many worker
    devices — the co-install pattern the labeling rule exploits.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._campaigns: dict[int, Campaign] = {}
        self._counter = itertools.count(1)

    def post_campaign(
        self,
        app: App,
        target_installs: int | None = None,
        target_reviews: int | None = None,
        retention_days: float | None = None,
    ) -> Campaign:
        campaign = Campaign(
            campaign_id=next(self._counter),
            app_package=app.package,
            target_installs=target_installs
            if target_installs is not None
            else int(self._rng.integers(40, 400)),
            target_reviews=target_reviews
            if target_reviews is not None
            else int(self._rng.integers(20, 200)),
            min_rating=int(self._rng.choice((4, 5), p=(0.3, 0.7))),
            retention_days=retention_days
            if retention_days is not None
            else float(self._rng.choice((3.0, 7.0, 14.0, 30.0))),
        )
        self._campaigns[campaign.campaign_id] = campaign
        return campaign

    def campaigns(self) -> list[Campaign]:
        return list(self._campaigns.values())

    def get(self, campaign_id: int) -> Campaign:
        return self._campaigns[campaign_id]

    def advertised_packages(self) -> set[str]:
        """Every package ever promoted on the board (§7.2 label source)."""
        return {c.app_package for c in self._campaigns.values()}

    def next_job(self, exclude_packages: set[str] | None = None) -> PromoJob | None:
        """Hand out the next install job, skipping apps the worker's
        device already has installed."""
        exclude = exclude_packages or set()
        open_campaigns = [
            c
            for c in self._campaigns.values()
            if c.installs_remaining > 0 and c.app_package not in exclude
        ]
        if not open_campaigns:
            return None
        # Most-remaining-first with random tie-breaking spreads installs
        # across devices.
        weights = np.array([c.installs_remaining for c in open_campaigns], dtype=float)
        chosen = open_campaigns[
            int(self._rng.choice(len(open_campaigns), p=weights / weights.sum()))
        ]
        chosen.delivered_installs += 1
        wants_review = chosen.reviews_remaining > 0
        if wants_review:
            chosen.delivered_reviews += 1
        return PromoJob(
            campaign_id=chosen.campaign_id,
            app_package=chosen.app_package,
            wants_review=wants_review,
            min_rating=chosen.min_rating,
            retention_days=chosen.retention_days,
        )

    def freeze(self) -> FrozenBoard:
        """Immutable snapshot of remaining work, ordered by campaign id."""
        return FrozenBoard(
            campaigns=tuple(
                FrozenCampaign(
                    campaign_id=c.campaign_id,
                    app_package=c.app_package,
                    installs_remaining=c.installs_remaining,
                    reviews_remaining=c.reviews_remaining,
                    min_rating=c.min_rating,
                    retention_days=c.retention_days,
                )
                for cid, c in sorted(self._campaigns.items())
            )
        )

    def apply_delivery(self, campaign_id: int, review: bool = False) -> bool:
        """Commit one frozen-view job take, clamped to the targets.

        Devices working against the same start-of-day snapshot can
        jointly overshoot a campaign's remaining counts; the client only
        ever pays up to the bought targets, so excess takes are dropped
        here.  Returns whether anything was credited — replaying a
        delivery against a completed campaign is a no-op, which is what
        makes commit replay idempotent once targets are reached.
        """
        campaign = self._campaigns[campaign_id]
        credited = False
        if campaign.delivered_installs < campaign.target_installs:
            campaign.delivered_installs += 1
            credited = True
        if review and campaign.delivered_reviews < campaign.target_reviews:
            campaign.delivered_reviews += 1
            credited = True
        return credited

    def total_payout_usd(self) -> float:
        return sum(c.payout_usd for c in self._campaigns.values())
