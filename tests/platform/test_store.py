"""Tests for the Mongo-like document store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.store import Collection, DocumentStore


@pytest.fixture()
def people():
    collection = Collection("people")
    collection.insert_many(
        [
            {"name": "ana", "age": 30, "city": "lima"},
            {"name": "bob", "age": 25, "city": "dhaka"},
            {"name": "eve", "age": 35, "city": "lima"},
            {"name": "sam", "age": 25},
        ]
    )
    return collection


class TestQueries:
    def test_equality(self, people):
        assert len(people.find({"city": "lima"})) == 2

    def test_operators(self, people):
        assert len(people.find({"age": {"$gt": 25}})) == 2
        assert len(people.find({"age": {"$gte": 25}})) == 4
        assert len(people.find({"age": {"$lt": 30}})) == 2
        assert len(people.find({"age": {"$ne": 25}})) == 2
        assert len(people.find({"age": {"$in": [25, 35]}})) == 3

    def test_exists(self, people):
        assert len(people.find({"city": {"$exists": True}})) == 3
        assert len(people.find({"city": {"$exists": False}})) == 1

    def test_combined_conditions(self, people):
        results = people.find({"city": "lima", "age": {"$gte": 33}})
        assert [doc["name"] for doc in results] == ["eve"]

    def test_find_one(self, people):
        assert people.find_one({"name": "bob"})["age"] == 25
        assert people.find_one({"name": "nobody"}) is None

    def test_count_and_distinct(self, people):
        assert people.count() == 4
        assert people.count({"age": 25}) == 2
        assert people.distinct("city") == ["dhaka", "lima"]

    def test_unknown_operator_raises(self, people):
        with pytest.raises(ValueError):
            people.find({"age": {"$regex": ".*"}})

    def test_missing_field_equality_no_match(self, people):
        assert people.find({"country": "pe"}) == []


class TestIndexes:
    def test_index_results_match_scan(self, people):
        scan = people.find({"city": "lima"})
        people.create_index("city")
        indexed = people.find({"city": "lima"})
        assert indexed == scan

    def test_index_updated_on_insert(self, people):
        people.create_index("city")
        people.insert({"name": "zoe", "city": "lima", "age": 28})
        assert len(people.find({"city": "lima"})) == 3

    def test_index_with_range_condition_falls_back(self, people):
        people.create_index("age")
        # Range queries cannot use the equality index; must still work.
        assert len(people.find({"age": {"$gt": 24}})) == 4

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.fixed_dictionaries({"k": st.integers(0, 5), "v": st.integers(0, 100)}),
            max_size=40,
        ),
        st.integers(0, 5),
    )
    def test_property_indexed_equals_scanned(self, docs, key):
        plain = Collection("plain")
        indexed = Collection("indexed")
        indexed.create_index("k")
        for doc in docs:
            plain.insert(dict(doc))
            indexed.insert(dict(doc))
        assert plain.find({"k": key}) == indexed.find({"k": key})


class TestDocumentStore:
    def test_collection_created_on_access(self):
        store = DocumentStore()
        store["events"].insert({"x": 1})
        assert store.collection_names() == ["events"]
        assert store.total_documents() == 1

    def test_same_collection_returned(self):
        store = DocumentStore()
        assert store["a"] is store["a"]

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            DocumentStore()["a"].insert([1, 2])
