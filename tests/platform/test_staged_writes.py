"""Tests for the staged write path, the incremental sorted index, and
the length-stamped query-result cache of the columnar collections."""

import pytest

from repro.platform.store import DocumentStore, _SortedColumnIndex


def _fast_run(install_id, start, foreground=None):
    return {
        "install_id": install_id,
        "participant_id": "100000",
        "start": start,
        "end": start + 100.0,
        "period": 5.0,
        "foreground": foreground,
        "screen_on": True,
        "battery": 0.5,
        "usage_permission": True,
        "_type": "fast_run",
    }


def _collection(backend="columnar"):
    collection = DocumentStore(backend=backend).collection("fast_runs")
    collection.create_index("install_id")
    return collection


class TestStagedWrites:
    def test_writes_stage_until_first_read(self):
        collection = _collection()
        collection.insert_many([_fast_run("a", 0.0), _fast_run("b", 10.0)])
        collection.insert(_fast_run("c", 20.0))
        assert len(collection) == 3
        assert len(collection._frame) == 0  # nothing merged yet
        assert collection.find_one({"install_id": "c"})["start"] == 20.0
        assert len(collection._frame) == 3  # the read merged the backlog

    def test_compact_settles_the_backlog(self):
        store = DocumentStore(backend="columnar")
        collection = store.collection("fast_runs")
        collection.insert_many([_fast_run("a", 0.0)])
        store.compact()
        assert len(collection._frame) == 1
        # dict backend: compact is a no-op that must not blow up
        DocumentStore(backend="dict").compact()

    def test_insert_many_raises_at_offending_record_keeping_earlier(self):
        for backend in ("dict", "columnar"):
            collection = _collection(backend)
            with pytest.raises(TypeError):
                collection.insert_many([_fast_run("a", 0.0), "nope"])
            assert len(collection) == 1
            assert collection.find_one({"install_id": "a"}) is not None

    def test_schema_mismatch_degrades_at_read_with_all_documents_kept(self):
        dict_col = _collection("dict")
        columnar_col = _collection("columnar")
        docs = [_fast_run("a", 0.0), {"install_id": "b", "odd": True}]
        for collection in (dict_col, columnar_col):
            collection.insert_many(docs)
        assert dict_col.find() == columnar_col.find()
        assert dict_col.find({"install_id": "b"}) == columnar_col.find(
            {"install_id": "b"}
        )


class TestResultCache:
    def test_repeated_find_returns_fresh_list_of_same_rows(self):
        collection = _collection()
        collection.insert_many([_fast_run("a", 0.0), _fast_run("a", 10.0)])
        first = collection.find({"install_id": "a"})
        second = collection.find({"install_id": "a"})
        assert first == second
        assert first is not second  # callers may mutate the container
        assert first[0] is second[0]  # ...but rows are the stored dicts

    def test_insert_invalidates_cached_results(self):
        collection = _collection()
        collection.insert_many([_fast_run("a", 0.0)])
        assert collection.count({"install_id": "a"}) == 1
        assert collection.distinct("install_id") == ["a"]
        collection.insert(_fast_run("a", 10.0))
        collection.insert(_fast_run("b", 20.0))
        assert collection.count({"install_id": "a"}) == 2
        assert len(collection.find({"install_id": "a"})) == 2
        assert collection.distinct("install_id") == sorted(["a", "b"], key=repr)

    def test_unhashable_operand_bypasses_cache(self):
        collection = _collection()
        collection.insert_many([_fast_run("a", 0.0, foreground="app1")])
        query = {"foreground": {"$in": ["app1", "app2"]}}
        assert len(collection.find(query)) == 1
        collection.insert(_fast_run("b", 10.0, foreground="app2"))
        assert len(collection.find(query)) == 2


class TestSortedIndexDelta:
    def test_equality_probes_never_pay_the_sort(self):
        collection = _collection()
        collection.insert_many([_fast_run("a", float(k)) for k in range(100)])
        collection.find({"install_id": "a"})
        index = collection._indexes["install_id"]
        assert isinstance(index, _SortedColumnIndex)
        assert index._filled == 0  # no range probe -> no sorted run yet

    def test_small_delta_probed_without_merge(self):
        collection = _collection()
        collection.create_index("start")
        collection.insert_many([_fast_run("a", float(k) * 10.0) for k in range(100)])
        assert [
            d["start"] for d in collection.find({"start": {"$gte": 900.0}})
        ] == [900.0, 910.0, 920.0, 930.0, 940.0, 950.0, 960.0, 970.0, 980.0, 990.0]
        index = collection._indexes["start"]
        merged_at = index._filled
        assert merged_at == 100  # first probe merged the whole backlog
        for k in range(5):  # below the merge threshold
            collection.insert(_fast_run("b", 1000.0 + k))
        found = collection.find({"start": {"$gt": 985.0}})
        assert [d["start"] for d in found] == [990.0, 1000.0, 1001.0, 1002.0, 1003.0, 1004.0]
        assert collection._indexes["start"]._filled == merged_at  # delta scanned, not merged

    def test_large_delta_merges_and_stays_correct(self):
        collection = _collection()
        collection.create_index("start")
        collection.insert_many([_fast_run("a", float(k)) for k in range(64)])
        collection.find({"start": {"$lt": 10.0}})
        collection.insert_many([_fast_run("b", float(k) + 0.5) for k in range(64)])
        found = collection.find({"start": {"$gte": 60.0}})
        assert [d["start"] for d in found] == [60.0, 61.0, 62.0, 63.0, 60.5, 61.5, 62.5, 63.5]
        assert collection._indexes["start"]._filled == 128

    def test_interleaved_results_keep_insertion_order(self):
        dict_col = _collection("dict")
        columnar_col = _collection("columnar")
        for k in range(40):
            doc = _fast_run("a" if k % 2 else "b", float(40 - k))
            dict_col.insert(doc)
            columnar_col.insert(doc)
            query = {"start": {"$lte": float(40 - k) + 5.0}}
            assert dict_col.find(query) == columnar_col.find(query)
