"""On-device data buffer: accumulate, compress, hash-verified upload.

§3 "Data Buffer Module": snapshots are appended to per-type
accumulation files; when the slow file reaches 8 KB or the fast file
reaches 100 KB the file is gzip-compressed and queued.  Every 2 minutes
the upload alarm sends queued chunks to the server, which acknowledges
with the SHA-256 of the received bytes; the app deletes a chunk only
when the acknowledged hash matches its own, otherwise the chunk is
retransmitted ("resilient communications").
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass

from .. import obs
from .models import record_to_dict

__all__ = ["BufferedChunk", "DataBuffer", "chunk_hash"]


def chunk_hash(data: bytes) -> str:
    """The transfer-validation hash (SHA-256 hex digest)."""
    return hashlib.sha256(data).hexdigest()


@dataclass(slots=True)
class BufferedChunk:
    """One compressed accumulation file awaiting upload."""

    kind: str  # "fast" | "slow"
    data: bytes
    n_records: int
    attempts: int = 0

    @property
    def sha256(self) -> str:
        return chunk_hash(self.data)


class DataBuffer:
    """Per-install snapshot buffer with the paper's flush thresholds."""

    def __init__(
        self,
        fast_threshold_bytes: int = 100 * 1024,
        slow_threshold_bytes: int = 8 * 1024,
    ) -> None:
        self.thresholds = {"fast": fast_threshold_bytes, "slow": slow_threshold_bytes}
        self._accumulating: dict[str, list[str]] = {"fast": [], "slow": []}
        self._accumulated_bytes: dict[str, int] = {"fast": 0, "slow": 0}
        self._pending: list[BufferedChunk] = []
        self.records_buffered = 0
        self.chunks_sealed = 0
        self.chunks_delivered = 0
        self.retransmissions = 0

    # -- accumulation -------------------------------------------------------
    def append(self, kind: str, record) -> None:
        """Serialise one snapshot record into the ``kind`` accumulation file."""
        if kind not in self._accumulating:
            raise ValueError(f"unknown buffer kind {kind!r}")
        line = json.dumps(record_to_dict(record), separators=(",", ":"))
        self._accumulating[kind].append(line)
        self._accumulated_bytes[kind] += len(line) + 1
        self.records_buffered += 1
        if self._accumulated_bytes[kind] >= self.thresholds[kind]:
            self._seal(kind)

    def _seal(self, kind: str) -> None:
        """Compress the current accumulation file and start a new one."""
        lines = self._accumulating[kind]
        if not lines:
            return
        raw = ("\n".join(lines) + "\n").encode()
        self._pending.append(
            BufferedChunk(kind=kind, data=gzip.compress(raw), n_records=len(lines))
        )
        self._accumulating[kind] = []
        self._accumulated_bytes[kind] = 0
        self.chunks_sealed += 1
        obs.counter("buffer_chunks_sealed_total", {"kind": kind}).inc()
        obs.histogram(
            "buffer_chunk_records",
            {"kind": kind},
            buckets=(1, 5, 10, 50, 100, 500, 1000, 5000),
        ).observe(len(lines))

    def seal_all(self) -> None:
        """Force-seal both accumulation files (app shutdown / uninstall)."""
        for kind in ("fast", "slow"):
            self._seal(kind)

    # -- upload ---------------------------------------------------------------
    @property
    def pending_chunks(self) -> int:
        return len(self._pending)

    def flush(self, transport, max_attempts: int = 5) -> int:
        """Send pending chunks through ``transport``; delete each only on
        a matching hash acknowledgement.  ``max_attempts`` bounds the
        sends *per chunk per flush call*; undelivered chunks stay queued
        for the next flush (the 2-minute alarm retries them forever).
        Returns the number of records delivered this call."""
        delivered_records = 0
        still_pending: list[BufferedChunk] = []
        for chunk in self._pending:
            delivered = False
            for _ in range(max_attempts):
                chunk.attempts += 1
                if chunk.attempts > 1:
                    self.retransmissions += 1
                    obs.counter("buffer_retransmissions_total").inc()
                ack = transport.send(chunk.kind, chunk.data)
                if ack == chunk.sha256:
                    delivered = True
                    break
            if delivered:
                delivered_records += chunk.n_records
                self.chunks_delivered += 1
            else:
                still_pending.append(chunk)
        self._pending = still_pending
        obs.counter("buffer_records_delivered_total").inc(delivered_records)
        if still_pending:
            obs.counter("buffer_flushes_incomplete_total").inc()
        return delivered_records
