"""Hyper-parameter search over cross-validated F1.

The paper reports "KNN achieved best performance for K = 5" in both
tables, implying a K sweep; :func:`grid_search` generalises that to any
estimator and parameter grid, using the same repeated-stratified-CV
machinery as the main evaluation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .base import clone
from .model_selection import CrossValidationResult, cross_validate

__all__ = ["GridSearchResult", "grid_search"]


@dataclass
class GridSearchResult:
    """All evaluated parameter combinations, best-first by F1."""

    entries: list[tuple[dict, CrossValidationResult]] = field(default_factory=list)

    @property
    def best_params(self) -> dict:
        return self.entries[0][0]

    @property
    def best_result(self) -> CrossValidationResult:
        return self.entries[0][1]

    def table(self) -> list[tuple[str, float, float]]:
        return [
            (", ".join(f"{k}={v}" for k, v in params.items()), cv.f1, cv.auc)
            for params, cv in self.entries
        ]


def grid_search(
    estimator,
    param_grid: dict[str, list],
    X,
    y,
    n_splits: int = 10,
    n_repeats: int = 1,
    resample: str | None = None,
    random_state: int | None = 0,
) -> GridSearchResult:
    """Exhaustive grid search; returns combinations sorted by CV F1.

    ``param_grid`` maps parameter names to candidate values; every
    combination is evaluated with the same CV folds (same seed).
    """
    names = sorted(param_grid)
    result = GridSearchResult()
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        candidate = clone(estimator).set_params(**params)
        cv = cross_validate(
            candidate,
            X,
            y,
            n_splits=n_splits,
            n_repeats=n_repeats,
            resample=resample,
            random_state=random_state,
        )
        result.entries.append((params, cv))
    result.entries.sort(key=lambda entry: -entry[1].f1)
    return result
