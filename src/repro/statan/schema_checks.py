"""Schema-aware query checking (SCH001/SCH002).

The platform's store collections are declared once, in a
``SCHEMA_BY_COLLECTION``-style dict of ``RecordSchema`` constants
(:mod:`repro.frames.schema`).  Phase one extracts those declarations
statically (:func:`repro.statan.project.extract_schemas`); these rules
then resolve every ``store["collection"].find({...})``-shaped call
against the declared schema:

========  ==========================================================
SCH001    query literal uses an unknown field, an unknown ``$op``,
          or an ordering operator whose literal operand cannot match
          the field's declared kind
SCH002    ingest writes (``insert``/``insert_many`` dict literals) or
          row reads (``row["field"]`` on results of ``find``-family
          calls) touch fields the schema does not declare
========  ==========================================================

Resolution is deliberately narrow: the receiver must be a subscript
with a *string-literal* key naming a declared collection, so
``"text".find("x")`` and dynamic collection names never match.  Dict
literals only — queries built programmatically are invisible (precision
notes in DESIGN.md §10).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from .callgraph import _body_walk
from .engine import ModuleContext, matches_tail
from .findings import Finding
from .project import SchemaInfo
from .rules import ProjectRule, register_project

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from .project import ProjectContext

__all__ = ["SchemaQueryCheck", "SchemaFieldCheck"]

#: Mirror of repro.frames.query.QUERY_OPERATORS (kept literal so the
#: scanned tree is never imported).
QUERY_OPERATORS = ("$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$exists")

_ORDERING_OPS = ("$gt", "$gte", "$lt", "$lte")
_SCALAR_OPS = ("$eq", "$ne") + _ORDERING_OPS
_NUMERIC_KINDS = ("float", "int", "bool")

#: Store methods that take a query dict as their first argument.
_QUERY_METHODS = ("find", "find_one", "find_views", "count", "distinct", "delete")
#: Store methods whose results are schema-shaped rows.
_ROW_METHODS = ("find", "find_one", "find_views")


def _const_str(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _collection_call(
    node: ast.Call, project: "ProjectContext"
) -> tuple[str, str, SchemaInfo] | None:
    """Match ``<expr>["collection"].method(...)`` against the declared
    collections; returns (collection, method, schema) or None."""
    func = node.func
    if not isinstance(func, ast.Attribute) or not isinstance(
        func.value, ast.Subscript
    ):
        return None
    key = _const_str(func.value.slice)
    if key is None:
        return None
    schema = project.collections.get(key)
    if schema is None:
        return None
    return key, func.attr, schema


def _operand_kind(node: ast.AST) -> str | None:
    """Rough kind of a literal operand; None when not a plain literal."""
    if not isinstance(node, ast.Constant):
        return None
    value = node.value
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    return None


def _kind_mismatch(field_kind: str, operand_kind: str) -> bool:
    if field_kind in _NUMERIC_KINDS:
        return operand_kind == "str"
    if field_kind == "str":
        return operand_kind in _NUMERIC_KINDS
    return False


class _SchemaRule(ProjectRule):
    """Shared finding helper for the SCH rules."""

    def _finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=ctx.snippet(line),
        )


def _declared(schema: SchemaInfo) -> str:
    return f"schema '{schema.name}' ({schema.path}:{schema.line})"


@register_project
class SchemaQueryCheck(_SchemaRule):
    """SCH001: query literals must be satisfiable against the declared
    collection schema."""

    id = "SCH001"
    summary = "query literal inconsistent with the declared record schema"

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        for ctx in project.modules:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_mask_for(ctx, node)
                matched = _collection_call(node, project)
                if matched is None:
                    continue
                collection, method, schema = matched
                if method not in _QUERY_METHODS:
                    continue
                if method == "distinct":
                    fieldname = _const_str(node.args[0]) if node.args else None
                    if fieldname is not None and fieldname not in schema:
                        yield self._finding(
                            ctx, node,
                            f"distinct({fieldname!r}) on collection "
                            f"'{collection}': field is not declared by "
                            f"{_declared(schema)}",
                        )
                    query = node.args[1] if len(node.args) > 1 else None
                else:
                    query = node.args[0] if node.args else None
                if isinstance(query, ast.Dict):
                    yield from self._check_query(ctx, collection, schema, query)

    def _check_mask_for(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        """Operator-name check for direct ``mask_for(frame, {...})``
        calls — the frame's schema is rarely statically known, but a
        bad ``$op`` is wrong against any schema."""
        resolved = ctx.resolve(node.func) or (
            node.func.id if isinstance(node.func, ast.Name) else None
        )
        if not matches_tail(resolved, "mask_for") or len(node.args) < 2:
            return
        query = node.args[1]
        if not isinstance(query, ast.Dict):
            return
        for value in query.values:
            if not isinstance(value, ast.Dict):
                continue
            for op_key in value.keys:
                op = _const_str(op_key)
                if op and op.startswith("$") and op not in QUERY_OPERATORS:
                    yield self._finding(
                        ctx, op_key,
                        f"unknown query operator {op!r}; the store "
                        f"understands {', '.join(QUERY_OPERATORS)}",
                    )

    def _check_query(
        self,
        ctx: ModuleContext,
        collection: str,
        schema: SchemaInfo,
        query: ast.Dict,
    ) -> Iterator[Finding]:
        for key_node, value in zip(query.keys, query.values):
            fieldname = _const_str(key_node)
            if fieldname is None:
                continue
            field = schema.field(fieldname)
            if field is None:
                yield self._finding(
                    ctx, key_node,
                    f"query on collection '{collection}' filters unknown "
                    f"field {fieldname!r}; not declared by {_declared(schema)}",
                )
                continue
            if not isinstance(value, ast.Dict):
                operand_kind = _operand_kind(value)
                if operand_kind and _kind_mismatch(field.kind, operand_kind):
                    yield self._finding(
                        ctx, value,
                        f"field {fieldname!r} on collection '{collection}' "
                        f"is declared {field.kind!r} but is matched against "
                        f"a {operand_kind} literal; the filter can never "
                        "match",
                    )
                continue
            for op_node, operand in zip(value.keys, value.values):
                op = _const_str(op_node)
                if op is None:
                    continue
                if op.startswith("$") and op not in QUERY_OPERATORS:
                    yield self._finding(
                        ctx, op_node,
                        f"unknown query operator {op!r} on field "
                        f"{fieldname!r}; the store understands "
                        f"{', '.join(QUERY_OPERATORS)}",
                    )
                    continue
                if op in _SCALAR_OPS:
                    operand_kind = _operand_kind(operand)
                    if operand_kind and _kind_mismatch(field.kind, operand_kind):
                        yield self._finding(
                            ctx, operand,
                            f"field {fieldname!r} on collection "
                            f"'{collection}' is declared {field.kind!r} but "
                            f"{op} compares it to a {operand_kind} literal; "
                            "ordering/equality can never match",
                        )


@register_project
class SchemaFieldCheck(_SchemaRule):
    """SCH002: fields written at ingest or read off query results must
    be declared by the collection's schema."""

    id = "SCH002"
    summary = "record field not declared by the collection schema"

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        # Ingest writes: insert/insert_many dict literals, tree-wide.
        for ctx in project.modules:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                matched = _collection_call(node, project)
                if matched is None:
                    continue
                collection, method, schema = matched
                if method == "insert" and node.args:
                    yield from self._check_document(
                        ctx, collection, schema, node.args[0]
                    )
                elif method == "insert_many" and node.args:
                    yield from self._check_documents(
                        ctx, collection, schema, node.args[0]
                    )
        # Row reads: subscript access on results of find-family calls,
        # tracked per function body (assignments and for-loop targets).
        for info in project.symbols.iter_functions():
            ctx = project.by_path.get(info.path)
            if ctx is None:
                continue
            yield from self._check_row_reads(project, ctx, info)

    def _check_document(
        self, ctx: ModuleContext, collection: str, schema: SchemaInfo, doc: ast.AST
    ) -> Iterator[Finding]:
        if not isinstance(doc, ast.Dict):
            return
        for key_node in doc.keys:
            fieldname = _const_str(key_node)
            if fieldname is not None and fieldname not in schema:
                yield self._finding(
                    ctx, key_node,
                    f"insert into collection '{collection}' writes field "
                    f"{fieldname!r} which {_declared(schema)} does not "
                    "declare; add the Field or drop the key",
                )

    def _check_documents(
        self, ctx: ModuleContext, collection: str, schema: SchemaInfo, docs: ast.AST
    ) -> Iterator[Finding]:
        elements: list[ast.AST] = []
        if isinstance(docs, (ast.List, ast.Tuple, ast.Set)):
            elements = list(docs.elts)
        elif isinstance(docs, (ast.ListComp, ast.GeneratorExp)):
            elements = [docs.elt]
        for element in elements:
            yield from self._check_document(ctx, collection, schema, element)

    def _check_row_reads(
        self, project: "ProjectContext", ctx: ModuleContext, info
    ) -> Iterator[Finding]:
        rows: dict[str, tuple[str, SchemaInfo]] = {}

        def row_source(value: ast.AST) -> tuple[str, SchemaInfo] | None:
            if not isinstance(value, ast.Call):
                return None
            matched = _collection_call(value, project)
            if matched is None:
                return None
            collection, method, schema = matched
            if method not in _ROW_METHODS:
                return None
            return collection, schema

        # Pass one: bind row variables.  `rows = c.find(...)` binds the
        # *list* name; iterating it (or the call directly) binds the
        # per-row loop target.  Bindings resolve in source order (the
        # walk itself is unordered).
        lists: dict[str, tuple[str, SchemaInfo]] = {}
        ordered = sorted(
            _body_walk(info.node),
            key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)),
        )
        for node in ordered:
            if isinstance(node, ast.Assign):
                source = row_source(node.value)
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if source is not None:
                        is_single = (
                            isinstance(node.value.func, ast.Attribute)
                            and node.value.func.attr == "find_one"
                        )
                        (rows if is_single else lists)[target.id] = source
                    else:
                        # Rebinding kills stale row/list typings.
                        rows.pop(target.id, None)
                        lists.pop(target.id, None)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                source = row_source(node.iter)
                if source is None and isinstance(node.iter, ast.Name):
                    source = lists.get(node.iter.id)
                if source is not None:
                    rows[node.target.id] = source
        if not rows:
            return
        for node in _body_walk(info.node):
            if not (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id in rows
            ):
                continue
            fieldname = _const_str(node.slice)
            if fieldname is None:
                continue
            collection, schema = rows[node.value.id]
            if fieldname not in schema:
                yield self._finding(
                    ctx, node,
                    f"row from collection '{collection}' is read at "
                    f"undeclared field {fieldname!r}; {_declared(schema)} "
                    "does not provide it",
                )
