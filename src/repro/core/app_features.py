"""App usage features (§7.1): one vector per (app, device) instance.

The eleven feature groups from the paper, in order:

1.  accounts on the device that reviewed the app before / while / after
    RacketStore was installed;
2.  install-to-review time statistics;
3.  inter-review time statistics (gaps between consecutive reviews for
    the app from device accounts);
4.  whether the app was opened on multiple days;
5.  snapshots per day with the app on screen;
6.  snapshots collected per day from the device;
7.  inner retention — how long the app stayed installed during the
    study, and whether it spanned the whole observation window;
8.  normal / dangerous permissions requested;
9.  permissions granted / denied by the user;
10. VirusTotal flag count for the app's apk hash;
11. install and uninstall events during the study.

Review-timing features for apps the device's accounts never reviewed
use the ``NEVER_REVIEWED_SENTINEL_DAYS`` sentinel: a missing review is
semantically an install-to-review wait longer than the observation
horizon, not a missing value — this is what lets the classifier treat
"installed but never reviewed" as the personal-use signature (Fig 13).
Other undefined features are NaN and are median-imputed downstream.
"""

from __future__ import annotations

import math

import numpy as np

from ..playstore.catalog import Catalog
from ..simulation.clock import SECONDS_PER_DAY
from ..virustotal.client import VirusTotalClient
from .observations import DeviceObservation

#: Stand-in wait (days) when no review from the device exists: far past
#: the longest wait the paper observed (606 days).
NEVER_REVIEWED_SENTINEL_DAYS = 999.0

__all__ = [
    "APP_FEATURE_NAMES",
    "NEVER_REVIEWED_SENTINEL_DAYS",
    "extract_app_features",
    "app_feature_vector",
    "app_feature_matrix",
]

APP_FEATURE_NAMES: tuple[str, ...] = (
    "accounts_reviewed_before",      # (1)
    "accounts_reviewed_during",
    "accounts_reviewed_after",
    "accounts_reviewed_total",
    "install_to_review_mean_days",   # (2)
    "install_to_review_min_days",
    "inter_review_mean_days",        # (3)
    "inter_review_min_days",
    "opened_multiple_days",          # (4)
    "onscreen_snapshots_per_day",    # (5)
    "device_snapshots_per_day",      # (6)
    "inner_retention_days",          # (7)
    "spans_study_window",
    "n_normal_permissions",          # (8)
    "n_dangerous_permissions",
    "n_permissions_granted",         # (9)
    "n_permissions_denied",
    "vt_flags",                      # (10)
    "n_install_events",              # (11)
    "n_uninstall_events",
)


def _mean_or_sentinel(values: list[float]) -> float:
    return float(np.mean(values)) if values else NEVER_REVIEWED_SENTINEL_DAYS


def _min_or_sentinel(values: list[float]) -> float:
    return float(min(values)) if values else NEVER_REVIEWED_SENTINEL_DAYS


def extract_app_features(
    obs: DeviceObservation,
    package: str,
    catalog: Catalog,
    vt_client: VirusTotalClient | None = None,
) -> dict[str, float]:
    """Feature dict for one (app, device) instance."""
    reviews = obs.reviews_for_app(package)
    start, end = obs.installed_at, obs.uninstalled_at

    before = {r.google_id for r in reviews if r.timestamp < start}
    during = {r.google_id for r in reviews if start <= r.timestamp <= end}
    after = {r.google_id for r in reviews if r.timestamp > end}

    # (2) install-to-review.
    i2r = obs.install_to_review_days(package)

    # (3) inter-review gaps.
    timestamps = sorted(r.timestamp for r in reviews)
    gaps = [
        (b - a) / SECONDS_PER_DAY for a, b in zip(timestamps, timestamps[1:])
    ]

    # (4)/(5) usage.
    days_used = obs.foreground_days.get(package, set())
    onscreen = obs.foreground_snapshots.get(package, 0)

    # (7) inner retention: overlap of the app's installed interval with
    # the RacketStore observation window.
    install_time = obs.install_times.get(package)
    uninstall_events = [
        e["timestamp"]
        for e in obs.app_changes
        if e["action"] == "uninstall" and e["package"] == package
    ]
    if install_time is None:
        retention_days = math.nan
        spans_window = 0.0
    else:
        seen_from = max(install_time, start)
        seen_to = min(uninstall_events[-1], end) if uninstall_events else end
        retention_days = max(0.0, (seen_to - seen_from) / SECONDS_PER_DAY)
        spans_window = float(install_time <= start and not uninstall_events)

    # (8)/(9) permissions: requested from the Play listing, granted and
    # denied from the device-side records.
    if package in catalog:
        profile = catalog.get(package).permissions
        n_normal, n_dangerous = len(profile.normal), len(profile.dangerous)
    else:
        n_normal = n_dangerous = 0
    granted = denied = 0
    for app_info in obs.initial_apps:
        if app_info["package"] == package:
            granted, denied = app_info["n_granted"], app_info["n_denied"]
            break
    else:
        for event in obs.app_changes:
            if event["action"] == "install" and event["package"] == package:
                granted, denied = event.get("n_granted", 0), event.get("n_denied", 0)

    # (10) VirusTotal flags.
    apk_hash = obs.apk_hashes.get(package)
    vt_flags = (
        float(vt_client.positives(apk_hash))
        if vt_client is not None and apk_hash
        else 0.0
    )

    return {
        "accounts_reviewed_before": float(len(before)),
        "accounts_reviewed_during": float(len(during)),
        "accounts_reviewed_after": float(len(after)),
        "accounts_reviewed_total": float(len(before | during | after)),
        "install_to_review_mean_days": _mean_or_sentinel(i2r),
        "install_to_review_min_days": _min_or_sentinel(i2r),
        "inter_review_mean_days": _mean_or_sentinel(gaps),
        "inter_review_min_days": _min_or_sentinel(gaps),
        "opened_multiple_days": float(len(days_used) > 1),
        "onscreen_snapshots_per_day": onscreen / max(obs.active_days, 1),
        "device_snapshots_per_day": obs.snapshots_per_day,
        "inner_retention_days": retention_days,
        "spans_study_window": spans_window,
        "n_normal_permissions": float(n_normal),
        "n_dangerous_permissions": float(n_dangerous),
        "n_permissions_granted": float(granted),
        "n_permissions_denied": float(denied),
        "vt_flags": vt_flags,
        "n_install_events": float(obs.install_event_counts.get(package, 0)),
        "n_uninstall_events": float(obs.uninstall_event_counts.get(package, 0)),
    }


def app_feature_vector(
    obs: DeviceObservation,
    package: str,
    catalog: Catalog,
    vt_client: VirusTotalClient | None = None,
) -> np.ndarray:
    """Feature dict flattened into the canonical APP_FEATURE_NAMES order."""
    features = extract_app_features(obs, package, catalog, vt_client)
    return np.array([features[name] for name in APP_FEATURE_NAMES], dtype=np.float64)


_COLUMN = {name: i for i, name in enumerate(APP_FEATURE_NAMES)}


def app_feature_matrix(
    obs: DeviceObservation,
    packages: list[str],
    catalog: Catalog,
    vt_client: VirusTotalClient | None = None,
) -> np.ndarray:
    """All of a device's (app, device) feature rows in one pass.

    Byte-identical to stacking :func:`app_feature_vector` over
    ``packages`` (the DESIGN.md §9 contract): every float is produced
    by the same IEEE operations on the same operands in the same order.
    The speedup comes from hoisting the per-device work the scalar path
    repeats per row — the ``initial_apps`` permission scan and
    ``app_changes`` scans collapse into single-pass lookup tables, the
    review-gap statistics run on numpy slices, and retention windows,
    usage rates and event counts fill whole columns at once.
    """
    n = len(packages)
    M = np.empty((n, len(APP_FEATURE_NAMES)), dtype=np.float64)
    if n == 0:
        return M
    start, end = obs.installed_at, obs.uninstalled_at
    active_days = max(obs.active_days, 1)

    # -- single-pass lookup tables over the device's records ------------
    # First initial_apps entry per package (the scalar path's
    # first-match linear scan), then the *last* install event (its
    # no-break fallback scan).
    initial_perm: dict[str, tuple[int, int]] = {}
    for app_info in obs.initial_apps:
        initial_perm.setdefault(
            app_info["package"], (app_info["n_granted"], app_info["n_denied"])
        )
    install_perm: dict[str, tuple[int, int]] = {}
    last_uninstall: dict[str, float] = {}
    for event in obs.app_changes:
        if event["action"] == "install":
            install_perm[event["package"]] = (
                event.get("n_granted", 0),
                event.get("n_denied", 0),
            )
        elif event["action"] == "uninstall":
            last_uninstall[event["package"]] = event["timestamp"]

    install_times = obs.install_times
    apk_hashes = obs.apk_hashes
    foreground_days = obs.foreground_days
    foreground_snapshots = obs.foreground_snapshots
    install_counts = obs.install_event_counts
    uninstall_counts = obs.uninstall_event_counts

    # -- review timing groups (1)-(3): numpy slices per package ---------
    for j, package in enumerate(packages):
        reviews = obs.reviews_for_app(package)
        # device_reviews lists are (timestamp, review_id)-sorted, so the
        # timestamp column is the scalar path's sorted(timestamps).
        timestamps = np.fromiter(
            (r.timestamp for r in reviews), np.float64, len(reviews)
        )
        before: set[str] = set()
        during: set[str] = set()
        after: set[str] = set()
        for review in reviews:
            if review.timestamp < start:
                before.add(review.google_id)
            elif review.timestamp <= end:
                during.add(review.google_id)
            else:
                after.add(review.google_id)
        M[j, _COLUMN["accounts_reviewed_before"]] = float(len(before))
        M[j, _COLUMN["accounts_reviewed_during"]] = float(len(during))
        M[j, _COLUMN["accounts_reviewed_after"]] = float(len(after))
        M[j, _COLUMN["accounts_reviewed_total"]] = float(
            len(before | during | after)
        )

        install_time = install_times.get(package)
        if install_time is None:
            i2r = timestamps[:0]
        else:
            i2r = (timestamps[timestamps > install_time] - install_time) / SECONDS_PER_DAY
        M[j, _COLUMN["install_to_review_mean_days"]] = (
            float(np.mean(i2r)) if i2r.size else NEVER_REVIEWED_SENTINEL_DAYS
        )
        M[j, _COLUMN["install_to_review_min_days"]] = (
            float(np.min(i2r)) if i2r.size else NEVER_REVIEWED_SENTINEL_DAYS
        )

        gaps = np.diff(timestamps) / SECONDS_PER_DAY
        M[j, _COLUMN["inter_review_mean_days"]] = (
            float(np.mean(gaps)) if gaps.size else NEVER_REVIEWED_SENTINEL_DAYS
        )
        M[j, _COLUMN["inter_review_min_days"]] = (
            float(np.min(gaps)) if gaps.size else NEVER_REVIEWED_SENTINEL_DAYS
        )

    # -- usage (4)-(6): whole columns ------------------------------------
    M[:, _COLUMN["opened_multiple_days"]] = np.fromiter(
        (len(foreground_days.get(p, ())) > 1 for p in packages), np.float64, n
    )
    onscreen = np.fromiter(
        (foreground_snapshots.get(p, 0) for p in packages), np.float64, n
    )
    M[:, _COLUMN["onscreen_snapshots_per_day"]] = onscreen / active_days
    M[:, _COLUMN["device_snapshots_per_day"]] = obs.snapshots_per_day

    # -- inner retention (7): vectorized window overlap ------------------
    has_install_time = np.fromiter(
        (p in install_times for p in packages), np.bool_, n
    )
    install_time_arr = np.fromiter(
        (install_times.get(p, 0.0) for p in packages), np.float64, n
    )
    has_uninstall = np.fromiter(
        (p in last_uninstall for p in packages), np.bool_, n
    )
    uninstall_arr = np.fromiter(
        (last_uninstall.get(p, 0.0) for p in packages), np.float64, n
    )
    seen_from = np.maximum(install_time_arr, start)
    seen_to = np.where(has_uninstall, np.minimum(uninstall_arr, end), end)
    retention = np.maximum(0.0, (seen_to - seen_from) / SECONDS_PER_DAY)
    retention[~has_install_time] = math.nan
    spans = ((install_time_arr <= start) & ~has_uninstall).astype(np.float64)
    spans[~has_install_time] = 0.0
    M[:, _COLUMN["inner_retention_days"]] = retention
    M[:, _COLUMN["spans_study_window"]] = spans

    # -- permissions (8)-(9) and VT flags (10): table lookups ------------
    for j, package in enumerate(packages):
        if package in catalog:
            profile = catalog.get(package).permissions
            n_normal, n_dangerous = len(profile.normal), len(profile.dangerous)
        else:
            n_normal = n_dangerous = 0
        granted, denied = initial_perm.get(
            package, install_perm.get(package, (0, 0))
        )
        M[j, _COLUMN["n_normal_permissions"]] = float(n_normal)
        M[j, _COLUMN["n_dangerous_permissions"]] = float(n_dangerous)
        M[j, _COLUMN["n_permissions_granted"]] = float(granted)
        M[j, _COLUMN["n_permissions_denied"]] = float(denied)
        apk_hash = apk_hashes.get(package)
        M[j, _COLUMN["vt_flags"]] = (
            float(vt_client.positives(apk_hash))
            if vt_client is not None and apk_hash
            else 0.0
        )

    # -- install/uninstall events (11): whole columns --------------------
    M[:, _COLUMN["n_install_events"]] = np.fromiter(
        (install_counts.get(p, 0) for p in packages), np.float64, n
    )
    M[:, _COLUMN["n_uninstall_events"]] = np.fromiter(
        (uninstall_counts.get(p, 0) for p in packages), np.float64, n
    )
    return M
