"""SCH001/SCH002: schema-aware query and field checking."""

from repro.statan.engine import analyze_tree


def rules_fired(root, rule):
    findings, _ = analyze_tree([root])
    return [f for f in findings if f.rule == rule]


SCHEMA_MODULE = (
    "from repro.frames.schema import Field, RecordSchema\n"
    "\n"
    'RUN_SCHEMA = RecordSchema("run", (\n'
    '    Field("run_id", "str"),\n'
    '    Field("elapsed", "float"),\n'
    '    Field("n", "int"),\n'
    "))\n"
    "\n"
    'BY_COLLECTION = {"runs": RUN_SCHEMA}\n'
)


def tree_with(query_module: str) -> dict[str, str]:
    return {"frames/schema.py": SCHEMA_MODULE, "frames/use.py": query_module}


class TestSch001:
    def test_unknown_query_field(self, write_tree):
        root = write_tree(tree_with(
            "def q(store):\n"
            '    return store["runs"].find({"nope": 1})\n'
        ))
        findings = rules_fired(root, "SCH001")
        assert len(findings) == 1
        assert "'nope'" in findings[0].message
        assert "schema 'run'" in findings[0].message

    def test_unknown_operator(self, write_tree):
        root = write_tree(tree_with(
            "def q(store):\n"
            '    return store["runs"].count({"elapsed": {"$regex": "x"}})\n'
        ))
        findings = rules_fired(root, "SCH001")
        assert len(findings) == 1
        assert "$regex" in findings[0].message

    def test_ordering_operator_dtype_mismatch(self, write_tree):
        root = write_tree(tree_with(
            "def q(store):\n"
            '    return store["runs"].find({"elapsed": {"$lt": "fast"}})\n'
        ))
        findings = rules_fired(root, "SCH001")
        assert len(findings) == 1
        assert "'float'" in findings[0].message and "str" in findings[0].message

    def test_bare_equality_dtype_mismatch(self, write_tree):
        root = write_tree(tree_with(
            "def q(store):\n"
            '    return store["runs"].find({"run_id": 7})\n'
        ))
        assert len(rules_fired(root, "SCH001")) == 1

    def test_distinct_on_undeclared_field(self, write_tree):
        root = write_tree(tree_with(
            "def q(store):\n"
            '    return store["runs"].distinct("nope")\n'
        ))
        findings = rules_fired(root, "SCH001")
        assert len(findings) == 1
        assert "distinct" in findings[0].message

    def test_declared_fields_and_operators_are_silent(self, write_tree):
        root = write_tree(tree_with(
            "def q(store):\n"
            '    runs = store["runs"].find({"elapsed": {"$gte": 1.5}})\n'
            '    total = store["runs"].count({"run_id": "a", "n": {"$in": [1, 2]}})\n'
            '    names = store["runs"].distinct("run_id")\n'
            "    return runs, total, names\n"
        ))
        assert rules_fired(root, "SCH001") == []

    def test_str_find_is_not_a_store_query(self, write_tree):
        root = write_tree(tree_with(
            "def q(text):\n"
            '    return "runs".find({"nope": 1}), text.find("x")\n'
        ))
        assert rules_fired(root, "SCH001") == []

    def test_unknown_collection_is_ignored(self, write_tree):
        root = write_tree(tree_with(
            "def q(store):\n"
            '    return store["mystery"].find({"anything": 1})\n'
        ))
        assert rules_fired(root, "SCH001") == []


class TestSch002:
    def test_insert_with_undeclared_field(self, write_tree):
        root = write_tree(tree_with(
            "def ingest(store):\n"
            '    store["runs"].insert({"run_id": "a", "elapsed": 1.0, "extra": 2})\n'
        ))
        findings = rules_fired(root, "SCH002")
        assert len(findings) == 1
        assert "'extra'" in findings[0].message

    def test_insert_many_listcomp_checks_the_element(self, write_tree):
        root = write_tree(tree_with(
            "def ingest(store, items):\n"
            '    store["runs"].insert_many(\n'
            '        [{"run_id": r, "bogus": 1} for r in items]\n'
            "    )\n"
        ))
        findings = rules_fired(root, "SCH002")
        assert len(findings) == 1
        assert "'bogus'" in findings[0].message

    def test_row_read_on_undeclared_field(self, write_tree):
        root = write_tree(tree_with(
            "def scan(store):\n"
            '    rows = store["runs"].find({"n": 1})\n'
            "    out = []\n"
            "    for row in rows:\n"
            '        out.append(row["undeclared"])\n'
            "    return out\n"
        ))
        findings = rules_fired(root, "SCH002")
        assert len(findings) == 1
        assert "'undeclared'" in findings[0].message

    def test_find_one_row_read(self, write_tree):
        root = write_tree(tree_with(
            "def scan(store):\n"
            '    row = store["runs"].find_one({"run_id": "a"})\n'
            '    return row["missing"]\n'
        ))
        assert len(rules_fired(root, "SCH002")) == 1

    def test_declared_writes_and_reads_are_silent(self, write_tree):
        root = write_tree(tree_with(
            "def roundtrip(store):\n"
            '    store["runs"].insert({"run_id": "a", "elapsed": 1.0, "n": 1})\n'
            '    for row in store["runs"].find():\n'
            '        yield row["run_id"], row["elapsed"]\n'
        ))
        assert rules_fired(root, "SCH002") == []

    def test_rebinding_the_row_variable_clears_tracking(self, write_tree):
        root = write_tree(tree_with(
            "def scan(store, other):\n"
            '    row = store["runs"].find_one({"run_id": "a"})\n'
            "    row = other\n"
            '    return row["anything"]\n'
        ))
        assert rules_fired(root, "SCH002") == []
