"""Simulated TLS channel between the mobile app and the web app.

§3: data travels over TLS; the server acknowledges each chunk with the
crypto hash of what it received.  The simulated channel supports loss
(no acknowledgement returned) and corruption (a wrong hash comes back),
both of which the :class:`~repro.platform.buffer.DataBuffer` retry loop
must survive — property tests exercise exactly that.
"""

from __future__ import annotations

import numpy as np

from .. import obs

__all__ = ["Transport", "LossyTransport"]


class Transport:
    """Reliable in-memory channel delivering chunks to a receiver.

    ``receiver`` must expose ``receive_chunk(kind, data) -> str`` and
    return the SHA-256 of the bytes it durably stored.
    """

    def __init__(self, receiver) -> None:
        self._receiver = receiver
        self.chunks_sent = 0
        self.bytes_sent = 0

    def send(self, kind: str, data: bytes) -> str | None:
        self.chunks_sent += 1
        self.bytes_sent += len(data)
        obs.counter("transport_chunks_sent_total", {"kind": kind}).inc()
        obs.counter("transport_bytes_sent_total").inc(len(data))
        return self._receiver.receive_chunk(kind, data)


class LossyTransport(Transport):
    """Channel with configurable loss and corruption probabilities.

    The Generator is required (keyword-only): a hidden fallback RNG
    would correlate every channel constructed without one and break
    the seeded-run byte-identity guarantee (statan DET001).
    """

    def __init__(
        self,
        receiver,
        *,
        rng: np.random.Generator,
        loss_probability: float = 0.0,
        corruption_probability: float = 0.0,
    ) -> None:
        super().__init__(receiver)
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        if not 0.0 <= corruption_probability <= 1.0:
            raise ValueError("corruption_probability must be in [0, 1]")
        self.loss_probability = loss_probability
        self.corruption_probability = corruption_probability
        self._rng = rng
        self.chunks_lost = 0
        self.chunks_corrupted = 0

    def send(self, kind: str, data: bytes) -> str | None:
        self.chunks_sent += 1
        self.bytes_sent += len(data)
        obs.counter("transport_chunks_sent_total", {"kind": kind}).inc()
        obs.counter("transport_bytes_sent_total").inc(len(data))
        if self._rng.random() < self.loss_probability:
            self.chunks_lost += 1
            obs.counter("transport_chunks_lost_total").inc()
            return None  # chunk vanished in transit: no ack
        if self._rng.random() < self.corruption_probability:
            self.chunks_corrupted += 1
            obs.counter("transport_chunks_corrupted_total").inc()
            corrupted = bytes([data[0] ^ 0xFF]) + data[1:]
            # The damaged bytes reach the real receiver: the server counts
            # the malformed chunk and acks the hash of what it received,
            # which will not match the sender's, forcing a retransmit.
            return self._receiver.receive_chunk(kind, corrupted)
        return self._receiver.receive_chunk(kind, data)
