"""The global no-op default, configure()/reset(), and the logger."""

import io

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.reset()
    yield
    obs.reset()


class TestGlobalState:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert isinstance(obs.registry(), obs.NullRegistry)
        assert isinstance(obs.tracer(), obs.NullTracer)

    def test_noop_instrumentation_costs_nothing_observable(self):
        obs.counter("x").inc()
        with obs.trace("span"):
            obs.histogram("h").observe(1.0)
        obs.get_logger("test").info("event", k=1)
        assert obs.registry().to_json()["counters"] == {}
        assert obs.tracer().root.children == {}

    def test_configure_swaps_in_live_implementations(self):
        obs.configure()
        assert obs.metrics_enabled() and obs.tracing_enabled()
        obs.counter("x").inc(2)
        with obs.trace("span"):
            pass
        assert obs.registry().value("x") == 2.0
        assert obs.tracer().find("span") is not None

    def test_reset_restores_noop(self):
        obs.configure()
        obs.counter("x").inc()
        obs.reset()
        assert not obs.enabled()
        assert obs.registry().value("x") == 0.0

    def test_configure_accepts_external_registry(self):
        mine = obs.MetricsRegistry()
        returned = obs.configure(registry=mine)
        assert returned is mine
        obs.counter("x").inc()
        assert mine.value("x") == 1.0


class TestStructLogger:
    def test_writes_key_value_lines(self):
        stream = io.StringIO()
        obs.configure(metrics=False, tracing=False, log_stream=stream)
        obs.get_logger("ingest").warning("malformed_chunk", kind="fast", bytes=17)
        line = stream.getvalue()
        assert "warning" in line
        assert "repro.ingest" in line
        assert "malformed_chunk" in line
        assert "kind=fast" in line and "bytes=17" in line

    def test_level_threshold_filters(self):
        stream = io.StringIO()
        obs.configure(metrics=False, tracing=False, log_stream=stream,
                      log_level="warning")
        obs.get_logger().info("quiet")
        obs.get_logger().error("loud")
        out = stream.getvalue()
        assert "quiet" not in out and "loud" in out

    def test_bind_stamps_fields(self):
        stream = io.StringIO()
        obs.configure(metrics=False, tracing=False, log_stream=stream)
        logger = obs.get_logger("x").bind(install_id="123")
        logger.info("event")
        assert "install_id=123" in stream.getvalue()

    def test_null_logger_by_default(self):
        logger = obs.get_logger("whatever")
        logger.info("dropped")  # must not raise or write anywhere
        assert isinstance(logger, obs.NullLogger)
