"""Engine mechanics: suppressions, fingerprints, baseline round-trip,
reporters."""

import json

from repro.statan import (
    analyze_paths,
    analyze_source,
    collect_suppressions,
    load_baseline,
    partition,
    save_baseline,
)
from repro.statan.reporters import LintResult, render_json, render_text

DIRTY = "import random\n\ndef f():\n    return random.random()\n"


class TestSuppressions:
    def test_same_line_disable(self):
        src = (
            "import random\n\n"
            "def f():\n"
            "    return random.random()  # statan: disable=DET001\n"
        )
        assert analyze_source(src) == []

    def test_disable_only_matching_rule(self):
        src = (
            "import random\n\n"
            "def f():\n"
            "    return random.random()  # statan: disable=DET002\n"
        )
        assert [f.rule for f in analyze_source(src)] == ["DET001"]

    def test_disable_list(self):
        src = (
            "import random\n\n"
            "def f(xs=[]):\n"
            "    return random.random(), xs  # statan: disable=DET001,BUG001\n"
        )
        # BUG001 anchors on the def line, not the suppressed line.
        assert [f.rule for f in analyze_source(src)] == ["BUG001"]

    def test_file_level_disable(self):
        src = "# statan: disable-file=DET001\n" + DIRTY
        assert analyze_source(src) == []

    def test_file_level_all(self):
        src = "# statan: disable-file=ALL\n" + DIRTY + "def g(xs=[]):\n    return xs\n"
        assert analyze_source(src) == []

    def test_parse_helper(self):
        per_line, per_file = collect_suppressions(
            "x = 1  # statan: disable=DET001, ML001\n# statan: disable-file=BUG001\n"
        )
        assert per_line == {1: {"DET001", "ML001"}}
        assert per_file == {"BUG001"}


class TestFingerprints:
    def test_stable_across_line_shifts(self):
        base = analyze_source(DIRTY, path="m.py")
        shifted = analyze_source("# a comment\n\n" + DIRTY, path="m.py")
        assert [f.fingerprint for f in base] == [f.fingerprint for f in shifted]

    def test_duplicate_snippets_get_distinct_fingerprints(self):
        src = (
            "import random\n\n"
            "def f():\n"
            "    return random.random()\n\n"
            "def g():\n"
            "    return random.random()\n"
        )
        findings = analyze_source(src, path="m.py")
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_path_is_part_of_identity(self):
        a = analyze_source(DIRTY, path="a.py")[0]
        b = analyze_source(DIRTY, path="b.py")[0]
        assert a.fingerprint != b.fingerprint


class TestBaselineRoundTrip:
    def test_round_trip_silences_then_resurfaces(self, tmp_path):
        module = tmp_path / "pkg" / "mod.py"
        module.parent.mkdir()
        module.write_text(DIRTY)
        baseline_file = tmp_path / "baseline.json"

        findings = analyze_paths([tmp_path / "pkg"])
        assert [f.rule for f in findings] == ["DET001"]

        save_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)
        new, grandfathered, stale = partition(findings, baseline)
        assert new == [] and len(grandfathered) == 1 and stale == []

        # A *new* violation is not masked by the old baseline entry.
        module.write_text(DIRTY + "\ndef g(xs=[]):\n    return xs\n")
        findings = analyze_paths([tmp_path / "pkg"])
        new, grandfathered, stale = partition(findings, load_baseline(baseline_file))
        assert [f.rule for f in new] == ["BUG001"]
        assert [f.rule for f in grandfathered] == ["DET001"]

    def test_fixed_finding_reported_stale(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(DIRTY)
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, analyze_paths([tmp_path]))

        module.write_text("def f(rng):\n    return rng.integers(0, 2)\n")
        new, grandfathered, stale = partition(
            analyze_paths([tmp_path]), load_baseline(baseline_file)
        )
        assert new == [] and grandfathered == []
        assert [e["rule"] for e in stale] == ["DET001"]

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.json")
        assert len(baseline) == 0


class TestReporters:
    def _result(self, tmp_path) -> LintResult:
        (tmp_path / "mod.py").write_text(DIRTY)
        findings = analyze_paths([tmp_path])
        return LintResult(findings, [], [], files_checked=1)

    def test_text_report_has_location_and_summary(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "mod.py:4:" in text
        assert "DET001" in text
        assert "1 new finding(s)" in text

    def test_json_report_is_machine_readable(self, tmp_path):
        payload = json.loads(render_json(self._result(tmp_path)))
        assert payload["summary"]["new"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET001"
        assert finding["baselined"] is False
        assert finding["fingerprint"]

    def test_exit_code_tracks_new_findings(self, tmp_path):
        result = self._result(tmp_path)
        assert result.exit_code == 1
        assert LintResult([], result.new, [], 1).exit_code == 0


class TestDeterministicFileOrder:
    def test_directory_walk_is_sorted(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text(DIRTY)
        findings = analyze_paths([tmp_path])
        assert [f.path for f in findings] == ["a.py", "b.py", "c.py"]
