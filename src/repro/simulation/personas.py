"""Behavioural personas: regular users, organic workers, dedicated workers.

§2 of the paper distinguishes (a) *professional/dedicated* workers whose
devices exist only for promotion, and (b) *organic* workers who "blend
product promotion with personal activities".  §8.2 finds 123/178 worker
devices show organic-indicative behaviour and 55/178 are promotion-only.

Each persona is a bag of distribution parameters; every ``sample_*``
method draws one device-level or event-level quantity.  Parameter values
are chosen so the simulated cohort reproduces the §6 statistics recorded
in :mod:`repro.simulation.calibration` (see the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PersonaKind", "Persona", "regular_user", "organic_worker", "dedicated_worker"]


PersonaKind = str  # "regular" | "organic_worker" | "dedicated_worker"

#: Non-Gmail services regular users register (Fig 5 center/right: regular
#: devices average ~6 account types, mostly social networks).
REGULAR_SERVICES = (
    "com.facebook.auth.login", "com.whatsapp", "org.telegram.messenger",
    "com.twitter.android.auth.login", "com.instagram.android",
    "com.skype.contacts.sync", "com.viber.voip", "com.dropbox.android",
    "com.linkedin.android", "com.snapchat.android", "com.spotify.music",
    "com.microsoft.office.outlook", "com.yahoo.mobile.client.share.sync",
    "com.samsung.android.mobileservice", "com.pinterest", "com.reddit.account",
    "com.discord", "com.paypal.android",
)

#: Services workers register: ASO-work oriented (Fig 5: "accounts mainly
#: for Google services and other services useful for ASO work").
WORKER_SERVICES = (
    "com.dualspace.daemon", "com.freelancer", "com.whatsapp",
    "com.facebook.auth.login", "org.telegram.messenger", "com.paypal.android",
    "com.lbe.parallel.intl", "com.excelliance.multiaccount",
)


@dataclass(frozen=True)
class Persona:
    """Distribution parameters for one participant archetype."""

    kind: PersonaKind
    is_worker: bool

    # -- accounts (§6.2) --------------------------------------------------
    gmail_log_median: float  # median of the lognormal Gmail-account count
    gmail_log_sigma: float
    gmail_max: int
    service_pool: tuple[str, ...]
    n_services_mean: float
    n_services_max: int

    # -- installed apps (§6.3) -------------------------------------------
    initial_user_apps_mean: float
    initial_user_apps_sd: float
    #: A minority of devices in both cohorts are "app hoarders" with a
    #: heavy extra-install tail — this inflates within-group variance so
    #: that, as in the paper, ANOVA on installed-app counts does NOT
    #: reject while the review-based contrasts do (Fig 6 left).
    hoarder_prob: float
    hoarder_extra_median: float
    third_party_apps_mean: float

    # -- churn (§6.3, Fig 9): daily install/uninstall events --------------
    daily_installs_log_median: float
    daily_installs_log_sigma: float
    daily_uninstall_ratio: float  # uninstalls ~ ratio * installs

    # -- usage (Fig 10): foreground sessions ------------------------------
    sessions_per_day_mean: float
    apps_used_per_day_mean: float
    session_minutes_mean: float

    # -- reviews (Figs 6, 7) ----------------------------------------------
    historical_reviews_log_median: float  # total past reviews per device
    historical_reviews_log_sigma: float
    review_prob_per_promo_install: float
    review_prob_per_personal_install: float
    fast_review_fraction: float       # reviews posted within a day of install
    review_delay_log_median_days: float
    review_delay_log_sigma: float

    # -- stopped apps (Fig 8) ----------------------------------------------
    stopped_apps_log_median: float
    stopped_apps_log_sigma: float

    # -- promotion workload -------------------------------------------------
    campaigns_per_day_mean: float  # promo installs per day (workers only)
    #: Fraction of the device's historical user installs that were
    #: promotion jobs (drives Fig 6-center and the Fig 15 split).
    initial_promo_fraction: float
    #: Probability the owner opens an app shortly after installing it
    #: (regular users install to use; workers often never open promos,
    #: which is §6.3's stopped-apps mechanism).
    open_after_install_prob: float

    # -- hygiene -------------------------------------------------------------
    dangerous_permission_grant_prob: float
    av_app_prob: float

    # ---------------------------------------------------------------------
    def sample_gmail_accounts(self, rng: np.random.Generator) -> int:
        value = rng.lognormal(np.log(self.gmail_log_median), self.gmail_log_sigma)
        return int(np.clip(round(value), 1, self.gmail_max))

    def sample_services(self, rng: np.random.Generator) -> tuple[str, ...]:
        n = int(np.clip(rng.poisson(self.n_services_mean), 0, self.n_services_max))
        n = min(n, len(self.service_pool))
        if n == 0:
            return ()
        return tuple(sorted(rng.choice(self.service_pool, size=n, replace=False)))

    def sample_initial_app_mix(self, rng: np.random.Generator) -> tuple[int, int]:
        """(base installs, hoarder extra).  The hoarder tail is a
        *personal-use* trait: promotion load scales with the base only,
        so a hoarding worker looks more organic, not more promotional."""
        base = int(max(3, rng.normal(self.initial_user_apps_mean, self.initial_user_apps_sd)))
        extra = 0
        if self.hoarder_prob > 0 and rng.random() < self.hoarder_prob:
            extra = int(rng.lognormal(np.log(self.hoarder_extra_median), 0.6))
        return base, extra

    def sample_initial_user_apps(self, rng: np.random.Generator) -> int:
        base, extra = self.sample_initial_app_mix(rng)
        return base + extra

    def sample_third_party_apps(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.third_party_apps_mean))

    def sample_daily_installs(self, rng: np.random.Generator) -> int:
        value = rng.lognormal(
            np.log(self.daily_installs_log_median), self.daily_installs_log_sigma
        )
        return int(round(value))

    def sample_daily_uninstalls(self, rng: np.random.Generator, installs: int) -> int:
        return int(rng.binomial(max(installs, 0), min(self.daily_uninstall_ratio, 1.0)))

    def sample_sessions(self, rng: np.random.Generator) -> int:
        return max(0, int(rng.poisson(self.sessions_per_day_mean)))

    def sample_apps_in_session(self, rng: np.random.Generator) -> int:
        per_session = max(1.0, self.apps_used_per_day_mean / max(self.sessions_per_day_mean, 1.0))
        return max(1, int(rng.poisson(per_session)))

    def sample_session_minutes(self, rng: np.random.Generator) -> float:
        return float(max(0.5, rng.exponential(self.session_minutes_mean)))

    def sample_historical_reviews(self, rng: np.random.Generator) -> int:
        if self.historical_reviews_log_median <= 0:
            return 0
        value = rng.lognormal(
            np.log(self.historical_reviews_log_median), self.historical_reviews_log_sigma
        )
        return int(round(value))

    def sample_review_delay_days(self, rng: np.random.Generator) -> float:
        """Install-to-review delay (Fig 7): a fast-review point mass for
        workers plus a lognormal tail for everyone."""
        if rng.random() < self.fast_review_fraction:
            return float(rng.uniform(0.01, 1.0))
        return float(
            rng.lognormal(np.log(self.review_delay_log_median_days), self.review_delay_log_sigma)
        )

    def sample_stopped_apps(self, rng: np.random.Generator) -> int:
        if self.stopped_apps_log_median <= 0:
            return int(rng.random() < 0.3)
        value = rng.lognormal(
            np.log(self.stopped_apps_log_median), self.stopped_apps_log_sigma
        )
        return int(round(value))

    def sample_promo_installs(self, rng: np.random.Generator) -> int:
        if self.campaigns_per_day_mean <= 0:
            return 0
        return int(rng.poisson(self.campaigns_per_day_mean))


def regular_user() -> Persona:
    """Instagram-recruited regular Android user (§4)."""
    return Persona(
        kind="regular",
        is_worker=False,
        # Fig 5: regular Gmail median 2, SD 1.66, max 10.
        gmail_log_median=2.0,
        gmail_log_sigma=0.55,
        gmail_max=10,
        service_pool=REGULAR_SERVICES,
        n_services_mean=5.0,
        n_services_max=19,
        # Fig 6: ~65 installed apps incl. 14 preinstalled.
        initial_user_apps_mean=38.0,
        initial_user_apps_sd=16.0,
        hoarder_prob=0.06,
        hoarder_extra_median=230.0,
        third_party_apps_mean=0.4,
        # Fig 9: regular daily installs mean 3.88, median 2.0.
        daily_installs_log_median=2.0,
        daily_installs_log_sigma=1.05,
        daily_uninstall_ratio=0.85,
        sessions_per_day_mean=11.0,
        apps_used_per_day_mean=9.0,
        session_minutes_mean=7.0,
        # Fig 6 right: mean 1.91 total reviews, max 36.
        historical_reviews_log_median=1.0,
        historical_reviews_log_sigma=1.0,
        review_prob_per_promo_install=0.0,
        review_prob_per_personal_install=0.015,
        # Fig 7: only 4/35 regular reviews within a day; median wait 21.9 d.
        fast_review_fraction=0.1,
        review_delay_log_median_days=21.92,
        review_delay_log_sigma=1.8,
        stopped_apps_log_median=0.0,
        stopped_apps_log_sigma=0.0,
        campaigns_per_day_mean=0.0,
        initial_promo_fraction=0.0,
        open_after_install_prob=0.88,
        dangerous_permission_grant_prob=0.72,
        av_app_prob=0.05,
    )


def organic_worker(intensity: float = 1.0) -> Persona:
    """ASO worker using a personal device: personal usage plus a modest
    stream of promotion jobs (the detection-evading archetype).

    ``intensity`` scales the promotion workload: low-intensity organic
    workers (novices, §8.2) hide very little ASO work among everyday
    activity and are the hardest devices to detect.
    """
    intensity = max(0.05, float(intensity))
    return Persona(
        kind="organic_worker",
        is_worker=True,
        # Organic devices pull the worker Gmail median down toward ~15-20.
        gmail_log_median=max(2.5, 16.0 * intensity**0.7),
        gmail_log_sigma=0.75,
        gmail_max=120,
        service_pool=WORKER_SERVICES + REGULAR_SERVICES[:6],
        n_services_mean=4.0,
        n_services_max=12,
        initial_user_apps_mean=34.0,
        initial_user_apps_sd=16.0,
        hoarder_prob=0.10,
        hoarder_extra_median=230.0,
        third_party_apps_mean=1.2,
        # Worker churn: overall mean 15.94/day, median 6.41 — organic
        # devices sit at the lower end.
        daily_installs_log_median=2.8,
        daily_installs_log_sigma=1.25,
        daily_uninstall_ratio=0.65,
        sessions_per_day_mean=10.0,
        apps_used_per_day_mean=9.0,
        session_minutes_mean=6.0,
        # Historical review volume: organic share of mean ~209/device.
        historical_reviews_log_median=max(2.0, 60.0 * intensity),
        historical_reviews_log_sigma=1.35,
        review_prob_per_promo_install=0.90,
        review_prob_per_personal_install=0.01,
        # Fig 7: 33% of worker reviews within one day; median 5 days.
        fast_review_fraction=0.28,
        review_delay_log_median_days=8.5,
        review_delay_log_sigma=1.05,
        stopped_apps_log_median=max(1.0, 6.0 * intensity),
        stopped_apps_log_sigma=1.0,
        campaigns_per_day_mean=2.5 * intensity,
        initial_promo_fraction=min(0.85, 0.45 * intensity**0.6),
        open_after_install_prob=0.55,
        dangerous_permission_grant_prob=0.93,
        av_app_prob=0.03,
    )


def dedicated_worker() -> Persona:
    """Professional worker device used exclusively for promotion (§8.2:
    55/178 devices; median 31 Gmail accounts, 23 stopped apps)."""
    return Persona(
        kind="dedicated_worker",
        is_worker=True,
        gmail_log_median=31.0,
        gmail_log_sigma=0.72,
        gmail_max=163,
        service_pool=WORKER_SERVICES,
        n_services_mean=2.5,
        n_services_max=8,
        initial_user_apps_mean=42.0,
        initial_user_apps_sd=20.0,
        hoarder_prob=0.10,
        hoarder_extra_median=230.0,
        third_party_apps_mean=2.0,
        daily_installs_log_median=1.6,
        daily_installs_log_sigma=0.9,
        daily_uninstall_ratio=0.55,
        # Promotion-only devices barely use apps for personal purposes.
        sessions_per_day_mean=4.0,
        apps_used_per_day_mean=5.0,
        session_minutes_mean=2.0,
        historical_reviews_log_median=220.0,
        historical_reviews_log_sigma=1.1,
        review_prob_per_promo_install=0.95,
        review_prob_per_personal_install=0.0,
        fast_review_fraction=0.34,
        review_delay_log_median_days=8.0,
        review_delay_log_sigma=1.0,
        # Fig 8 / §8.2: median 23 stopped apps, mean 66 (heavy tail).
        stopped_apps_log_median=23.0,
        stopped_apps_log_sigma=1.15,
        campaigns_per_day_mean=13.0,
        initial_promo_fraction=1.0,
        open_after_install_prob=0.12,
        dangerous_permission_grant_prob=0.97,
        av_app_prob=0.02,
    )
