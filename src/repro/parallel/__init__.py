"""``repro.parallel`` — deterministic parallel execution.

The paper's evaluation is hundreds of independent fit/predict jobs
(repeated 10-fold CV over six classifiers and three resampling
strategies) plus per-tree forest fits and seventeen independent
experiment cells.  This package fans that work out across cores
**without changing a single output bit**: the contract is that all RNG
seeds are derived before fan-out, results are collected by submission
index, and worker-side :mod:`repro.obs` metrics are merged back into
the parent registry.

Everything is dependency-free (``concurrent.futures`` +
``multiprocessing`` from the stdlib).  ``n_jobs=None`` defers to the
``REPRO_N_JOBS`` environment variable; ``<= 0`` means all cores; and
environments where process pools cannot start fall back to serial
execution with identical results.  See DESIGN.md §8 for the
determinism-under-parallelism contract.
"""

from .executor import (
    ProcessExecutor,
    SerialExecutor,
    get_executor,
    parallel_map,
    resolve_n_jobs,
)
from .seeding import draw_seeds, spawn_seeds
from .worker import in_worker, run_job

__all__ = [
    "SerialExecutor",
    "ProcessExecutor",
    "get_executor",
    "resolve_n_jobs",
    "parallel_map",
    "spawn_seeds",
    "draw_seeds",
    "in_worker",
    "run_job",
]
