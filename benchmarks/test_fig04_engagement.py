"""Bench: Figure 4 snapshots/day vs active days."""

from repro.analysis import compute_engagement
from repro.experiments import run_experiment


def test_fig04_engagement(benchmark, workbench, emit):
    benchmark(compute_engagement, workbench.all_observations)
    report = emit(run_experiment("fig04", workbench))
    # Paper: most devices report at least 100 snapshots per day.
    assert report.metrics["frac_over_100"] >= 0.9
    # Medians in the thousands, same order of magnitude as the paper.
    assert 500 <= report.metrics["worker_median"] <= 20_000
    assert 500 <= report.metrics["regular_median"] <= 20_000
