"""Shared experiment infrastructure.

A :class:`Workbench` owns one simulated study plus everything derived
from it (observations, the detection-pipeline result), computed lazily
and cached, so the 17 experiment runners and the benchmark suite share
a single expensive simulation per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..core.observations import DeviceObservation, build_observations
from ..core.pipeline import DetectionPipeline, PipelineResult
from ..simulation.config import SimulationConfig
from ..simulation.world import StudyData, run_study

__all__ = ["ExperimentReport", "Workbench", "shared_workbench"]


@dataclass
class ExperimentReport:
    """The output of one experiment runner: printable lines plus the
    machine-readable metrics the tests assert on."""

    experiment_id: str
    title: str
    lines: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        return "\n".join([header, *self.lines])


class Workbench:
    """Lazily computed study + pipeline shared across experiments.

    ``n_jobs`` is forwarded to the simulation's day phases and to the
    default pipeline's CV / forest fits (the pipeline part is ignored
    when an explicit ``pipeline`` is supplied); outputs are
    bit-identical at any worker count.
    """

    def __init__(
        self,
        config: SimulationConfig | None = None,
        pipeline: DetectionPipeline | None = None,
        n_jobs: int | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self._n_jobs = n_jobs
        self._pipeline = pipeline or DetectionPipeline(n_splits=10, n_jobs=n_jobs)

    @cached_property
    def data(self) -> StudyData:
        return run_study(self.config, n_jobs=self._n_jobs)

    @cached_property
    def observations(self) -> list[DeviceObservation]:
        """Observations for the classifier-eligible (>= 2 days) devices."""
        return build_observations(self.data, self.data.eligible_participants(min_days=2))

    @cached_property
    def all_observations(self) -> list[DeviceObservation]:
        """Observations for every install that produced data."""
        return build_observations(self.data)

    @cached_property
    def pipeline_result(self) -> PipelineResult:
        return self._pipeline.run(self.data)


_CACHE: dict[str, Workbench] = {}


def shared_workbench(scale: str = "default") -> Workbench:
    """Process-wide workbench cache, keyed by config scale.

    ``"default"`` is the paper-calibrated 178+88 cohort; ``"small"`` is
    the sub-second unit-test cohort; ``"paper"`` is the full 803-device
    deployment.
    """
    if scale not in _CACHE:
        config = {
            "default": SimulationConfig(),
            "small": SimulationConfig.small(),
            "paper": SimulationConfig.paper_scale(),
        }[scale]
        _CACHE[scale] = Workbench(config)
    return _CACHE[scale]
