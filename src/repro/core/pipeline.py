"""End-to-end detection pipeline: observations → labels → classifiers.

Ties §7 and §8 together the way the paper does: the app classifier is
trained on the labeled held-out devices, then scores every installed app
on every device to produce the *app suspiciousness* feature, which feeds
the device classifier.  Figure 15's organic/promotion-dedicated split
falls out of the per-device scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..simulation.world import StudyData
from .app_classifier import AppClassifier, AppClassifierEvaluation, evaluate_app_algorithms
from .app_features import app_feature_matrix, app_feature_vector
from .datasets import AppDataset, DeviceDataset, build_app_dataset, build_device_dataset
from .device_classifier import (
    DeviceClassifier,
    DeviceClassifierEvaluation,
    evaluate_device_algorithms,
)
from .device_features import device_feature_matrix
from .labeling import LabelingConfig
from .observations import DeviceObservation, build_observations

__all__ = ["DeviceVerdict", "PipelineResult", "DetectionPipeline"]


@dataclass(frozen=True)
class DeviceVerdict:
    """Per-device pipeline output (Figure 15 plots these for workers)."""

    install_id: str
    predicted_worker: bool
    worker_probability: float
    app_suspiciousness: float
    n_apps_scored: int
    n_installed_and_reviewed: int
    ground_truth_worker: bool

    @property
    def organic_indicative(self) -> bool:
        """§8.2: at least one installed app predicted as personal use."""
        return self.app_suspiciousness < 1.0


@dataclass
class PipelineResult:
    """Everything the pipeline produced in one run."""

    observations: list[DeviceObservation]
    app_dataset: AppDataset
    app_evaluation: AppClassifierEvaluation
    app_model: AppClassifier
    suspiciousness: dict[str, float]
    device_dataset: DeviceDataset
    device_evaluation: DeviceClassifierEvaluation
    device_model: DeviceClassifier
    verdicts: list[DeviceVerdict] = field(default_factory=list)

    def worker_verdicts(self) -> list[DeviceVerdict]:
        return [v for v in self.verdicts if v.ground_truth_worker]

    def organic_split(self) -> tuple[int, int]:
        """(organic-indicative, promotion-only) worker-device counts —
        the Figure 15 partition."""
        workers = self.worker_verdicts()
        organic = sum(1 for v in workers if v.organic_indicative)
        return organic, len(workers) - organic


class DetectionPipeline:
    """Configurable end-to-end run of the paper's detection system."""

    def __init__(
        self,
        labeling: LabelingConfig | None = None,
        app_cv_repeats: int = 1,
        device_cv_repeats: int = 1,
        n_splits: int = 10,
        device_resample: str | None = "smote",
        app_resample: str | None = None,
        random_state: int = 0,
        n_jobs: int | None = None,
        features: str = "batch",
    ) -> None:
        if features not in ("batch", "scalar"):
            raise ValueError(
                f"features must be 'batch' or 'scalar', got {features!r}"
            )
        self.labeling = labeling
        self.app_cv_repeats = app_cv_repeats
        self.device_cv_repeats = device_cv_repeats
        self.n_splits = n_splits
        self.device_resample = device_resample
        self.app_resample = app_resample
        self.random_state = random_state
        self.n_jobs = n_jobs
        #: Feature-extraction path ("batch" column slices vs per-row
        #: "scalar"); byte-identical outputs either way (DESIGN.md §9).
        self.features = features

    def run(self, data: StudyData) -> PipelineResult:
        with obs.trace("pipeline"):
            return self._run_traced(data)

    def _run_traced(self, data: StudyData) -> PipelineResult:
        with obs.trace("pipeline.observations"):
            observations = build_observations(data, data.eligible_participants(min_days=2))

        # §7: app classifier on the labeled held-out devices.  Fold count
        # is clamped to the minority-class size so tiny (e.g. evasion-
        # scenario) cohorts still cross-validate.
        with obs.trace("pipeline.app_dataset"):
            app_dataset = build_app_dataset(
                data, observations, self.labeling, features=self.features
            )
        app_splits = max(
            2, min(self.n_splits, app_dataset.n_suspicious, app_dataset.n_regular)
        )
        with obs.trace("pipeline.app_eval"):
            app_evaluation = evaluate_app_algorithms(
                app_dataset,
                n_splits=app_splits,
                n_repeats=self.app_cv_repeats,
                resample=self.app_resample,
                random_state=self.random_state,
                n_jobs=self.n_jobs,
            )
            app_model = AppClassifier(self.random_state).fit(app_dataset)

        # Score every device's installed apps -> suspiciousness feature.
        with obs.trace("pipeline.score_devices"):
            suspiciousness = self.score_devices(
                data, observations, app_model, features=self.features
            )

        # §8: device classifier with the suspiciousness feature wired in.
        with obs.trace("pipeline.device_dataset"):
            device_dataset = build_device_dataset(
                data, observations, suspiciousness, features=self.features
            )
        device_splits = max(
            2, min(self.n_splits, device_dataset.n_worker, device_dataset.n_regular)
        )
        with obs.trace("pipeline.device_eval"):
            device_evaluation = evaluate_device_algorithms(
                device_dataset,
                n_splits=device_splits,
                n_repeats=self.device_cv_repeats,
                resample=self.device_resample,
                random_state=self.random_state,
                n_jobs=self.n_jobs,
            )
            device_model = DeviceClassifier(self.random_state).fit(device_dataset)

        result = PipelineResult(
            observations=observations,
            app_dataset=app_dataset,
            app_evaluation=app_evaluation,
            app_model=app_model,
            suspiciousness=suspiciousness,
            device_dataset=device_dataset,
            device_evaluation=device_evaluation,
            device_model=device_model,
        )
        with obs.trace("pipeline.verdicts"):
            result.verdicts = self._verdicts(
                data, observations, device_model, suspiciousness
            )
        return result

    @staticmethod
    def score_devices(
        data: StudyData,
        observations: list[DeviceObservation],
        app_model: AppClassifier,
        features: str = "batch",
    ) -> dict[str, float]:
        """install_id -> fraction of user-installed apps flagged as
        promotion-installed by the app classifier (§8.1 feature (2))."""
        suspiciousness: dict[str, float] = {}
        for obs in observations:
            # Score Play-hosted user installs only: promotion happens on
            # the Play Store, and side-loaded apks have no Play reviews
            # for the usage features to reason about.
            packages = [
                a["package"]
                for a in obs.initial_apps
                if not a["preinstalled"]
                and a["package"] in data.catalog
                and data.catalog.get(a["package"]).on_play_store
            ]
            if not packages:
                suspiciousness[obs.install_id] = 0.0
                continue
            if features == "batch":
                X = app_feature_matrix(obs, packages, data.catalog, data.vt_client)
            else:
                X = np.vstack(
                    [
                        app_feature_vector(obs, package, data.catalog, data.vt_client)
                        for package in packages
                    ]
                )
            suspiciousness[obs.install_id] = app_model.flag_fraction(X)
        return suspiciousness

    def _verdicts(
        self,
        data: StudyData,
        observations: list[DeviceObservation],
        device_model: DeviceClassifier,
        suspiciousness: dict[str, float],
    ) -> list[DeviceVerdict]:
        verdicts = []
        scores = [suspiciousness.get(o.install_id, 0.0) for o in observations]
        X = device_feature_matrix(observations, scores)
        for i, obs in enumerate(observations):
            score = scores[i]
            # Per-row predict keeps the probability arithmetic identical
            # to the pre-batch path regardless of the model's internals.
            proba = device_model.predict_proba(X[i])[0]
            worker_col = int(np.nonzero(device_model._model.classes_ == 1)[0][0])
            p_worker = float(proba[worker_col])
            verdicts.append(
                DeviceVerdict(
                    install_id=obs.install_id,
                    predicted_worker=p_worker >= 0.5,
                    worker_probability=p_worker,
                    app_suspiciousness=score,
                    n_apps_scored=obs.n_user_installed,
                    n_installed_and_reviewed=obs.n_installed_and_reviewed,
                    ground_truth_worker=obs.is_worker,
                )
            )
        return verdicts
