"""Tests for LogisticRegression, LinearSVC, KNN and LVQ."""

import numpy as np
import pytest

from repro.ml.knn import KNeighborsClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.lvq import LVQClassifier
from repro.ml.svm import LinearSVC


class TestLogisticRegression:
    def test_accuracy_on_blobs(self, blobs):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) >= 0.95

    def test_gradient_vanishes_at_optimum(self, blobs):
        """The fitted coefficients must satisfy the penalised score
        equations: X^T (p - y) + w/C = 0 (intercept unpenalised)."""
        X, y = blobs
        model = LogisticRegression(C=1.0, standardize=False).fit(X, y)
        p = model.predict_proba(X)[:, 1]
        grad_w = X.T @ (p - y) + model.coef_ / model.C
        grad_b = np.sum(p - y)
        assert np.max(np.abs(grad_w)) < 1e-4
        assert abs(grad_b) < 1e-4

    def test_standardization_equivalent_predictions(self, blobs):
        X, y = blobs
        a = LogisticRegression(standardize=True).fit(X, y)
        b = LogisticRegression(standardize=False).fit(X, y)
        agreement = np.mean(a.predict(X) == b.predict(X))
        assert agreement >= 0.98

    def test_stronger_penalty_shrinks_weights(self, blobs):
        X, y = blobs
        loose = LogisticRegression(C=100.0).fit(X, y)
        tight = LogisticRegression(C=0.01).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_single_class(self):
        X = np.zeros((5, 2))
        model = LogisticRegression().fit(X, np.ones(5, int))
        assert (model.predict(X) == 1).all()

    def test_decision_function_consistent_with_proba(self, blobs):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        margin = model.decision_function(X)
        p = model.predict_proba(X)[:, 1]
        np.testing.assert_allclose(p, 1 / (1 + np.exp(-margin)), rtol=1e-10)


class TestLinearSVC:
    def test_accuracy_on_blobs(self, blobs):
        X, y = blobs
        model = LinearSVC(random_state=0).fit(X, y)
        assert model.score(X, y) >= 0.94

    def test_margin_sign_matches_prediction(self, blobs):
        X, y = blobs
        model = LinearSVC(random_state=0).fit(X, y)
        margins = model.decision_function(X)
        preds = model.predict(X)
        np.testing.assert_array_equal(preds, (margins >= 0).astype(int))

    def test_platt_probability_monotone_in_margin(self, blobs):
        X, y = blobs
        model = LinearSVC(random_state=0).fit(X, y)
        margins = model.decision_function(X)
        p = model.predict_proba(X)[:, 1]
        order = np.argsort(margins)
        assert np.all(np.diff(p[order]) >= -1e-12)

    def test_multiclass_rejected(self, rng):
        X = rng.normal(0, 1, (30, 2))
        with pytest.raises(ValueError):
            LinearSVC().fit(X, rng.integers(0, 3, 30))


class TestKNN:
    def test_k1_memorizes(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_trivial_neighbor_vote(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0], [10.1], [10.2]])
        y = np.array([0, 0, 0, 1, 1, 1])
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.predict([[0.05], [9.9]]).tolist() == [0, 1]

    def test_k_larger_than_train_set(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        model = KNeighborsClassifier(n_neighbors=10).fit(X, y)
        assert model.predict([[0.4]]).shape == (1,)

    def test_distance_weighting_prefers_closest(self):
        # 2 distant majority points vs 1 adjacent minority point.
        X = np.array([[0.0], [5.0], [5.2]])
        y = np.array([1, 0, 0])
        uniform = KNeighborsClassifier(n_neighbors=3, weights="uniform").fit(X, y)
        weighted = KNeighborsClassifier(n_neighbors=3, weights="distance").fit(X, y)
        assert uniform.predict([[0.1]])[0] == 0
        assert weighted.predict([[0.1]])[0] == 1

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="bogus")

    def test_scaling_matters_without_standardize(self):
        """A huge-scale irrelevant feature must not dominate after the
        internal z-scoring."""
        rng = np.random.default_rng(0)
        signal = rng.normal(0, 1, 200)
        noise = rng.normal(0, 10_000, 200)
        X = np.column_stack([signal, noise])
        y = (signal > 0).astype(int)
        model = KNeighborsClassifier(n_neighbors=5, standardize=True).fit(X, y)
        assert model.score(X, y) >= 0.8


class TestLVQ:
    def test_accuracy_on_blobs(self, blobs):
        X, y = blobs
        model = LVQClassifier(random_state=0).fit(X, y)
        assert model.score(X, y) >= 0.9

    def test_prototype_shapes(self, blobs):
        X, y = blobs
        model = LVQClassifier(prototypes_per_class=3, random_state=0).fit(X, y)
        assert model.prototypes_.shape == (6, X.shape[1])
        assert sorted(set(model.prototype_labels_.tolist())) == [0, 1]

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        a = LVQClassifier(random_state=11).fit(X, y)
        b = LVQClassifier(random_state=11).fit(X, y)
        np.testing.assert_allclose(a.prototypes_, b.prototypes_)

    def test_lvq2_variant_trains(self, blobs):
        X, y = blobs
        model = LVQClassifier(lvq2=True, random_state=0).fit(X, y)
        assert model.score(X, y) >= 0.85

    def test_small_class_capped_prototypes(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1], [5.2], [5.3]])
        y = np.array([0, 0, 1, 1, 1, 1])
        model = LVQClassifier(prototypes_per_class=4, random_state=0).fit(X, y)
        assert np.sum(model.prototype_labels_ == 0) == 2
