"""``python -m repro bench`` — speedup + determinism benchmark suites.

The ``ml`` suite times Table 1/Table 2-style workloads (repeated
stratified CV over the paper's algorithm suite, a per-tree-parallel
forest fit, and the KNN all-pairs predict) at ``n_jobs = 1`` versus
``n_jobs = max``, asserts that serial and parallel runs produce
byte-identical outputs (the DESIGN.md §8 contract), and writes the
measurements to ``BENCH_ml.json``.

The ``data`` suite times the columnar data plane (DESIGN.md §9) against
the dict backend — ingest, the Mongo-style query workloads, observation
assembly, and batch vs scalar feature extraction — asserts that both
paths return the same documents in the same order and byte-identical
feature matrices, and writes ``BENCH_data.json``.

The ``sim`` suite times the two-phase simulation engine (DESIGN.md §12)
at ``n_jobs = 1`` versus ``n_jobs = max`` in device-days/sec, asserts
that the serial and sharded runs produce byte-identical study output
(store contents, review corpus, rank series, device state), and writes
``BENCH_sim.json``.  With a ``bench-baseline.json`` present the sim
speedup is gated against its committed floor — skipped on runners with
fewer than two cores, where a parallel speedup is not measurable.

``--smoke`` shrinks the workloads to CI size; it is the regression gate
that the executor and the columnar store still honour their determinism
contracts on every push.  Speedups are recorded, not asserted:
single-core runners legitimately measure ~1x on the ml suite.
"""

from __future__ import annotations

import json
import os
import platform
import sys

import numpy as np

from . import obs
from .ml import (
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    LVQClassifier,
    RandomForestClassifier,
    cross_validate,
)
from .ml.base import check_array
from .parallel import resolve_n_jobs, spawn_seeds

__all__ = [
    "run_bench",
    "run_data_bench",
    "run_lint_bench",
    "run_sim_bench",
    "make_bench_dataset",
    "study_digest",
]


def _machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": np.__version__,
    }


def make_bench_dataset(
    n_samples: int, n_features: int, root_seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic two-class task shaped like the app/device feature
    matrices (a few informative dimensions, the rest noise).

    Seeds are spawned from ``root_seed`` via ``SeedSequence`` — a fresh
    stream, independent of every existing consumer.
    """
    data_seed, label_seed = spawn_seeds(root_seed, 2)
    rng = np.random.default_rng(data_seed)
    y = (np.arange(n_samples) % 3 == 0).astype(np.int64)  # ~1:2 imbalance
    y = np.random.default_rng(label_seed).permutation(y)
    X = rng.normal(size=(n_samples, n_features))
    informative = max(2, n_features // 4)
    X[:, :informative] += 1.5 * y[:, None]
    return X, y


def _cv_suite(smoke: bool, random_state: int) -> dict[str, object]:
    """Table 1/2-style algorithm suite (trimmed in smoke mode)."""
    if smoke:
        return {
            "RF": RandomForestClassifier(n_estimators=24, random_state=random_state),
            "KNN": KNeighborsClassifier(n_neighbors=5),
            "LR": LogisticRegression(C=1.0),
        }
    return {
        "XGB": GradientBoostingClassifier(
            n_estimators=60, max_depth=3, learning_rate=0.15, random_state=random_state
        ),
        "RF": RandomForestClassifier(n_estimators=120, random_state=random_state),
        "LR": LogisticRegression(C=1.0),
        "KNN": KNeighborsClassifier(n_neighbors=5),
        "LVQ": LVQClassifier(prototypes_per_class=5, epochs=25, random_state=random_state),
    }


def _timed(fn, *args, **kwargs) -> tuple[object, float]:
    with obs.timer() as timed:
        result = fn(*args, **kwargs)
    return result, timed.elapsed


def _speedup(serial: float, parallel: float) -> float:
    return round(serial / parallel, 3) if parallel > 0 else 0.0


def _reference_knn_votes(model: KNeighborsClassifier, X: np.ndarray) -> np.ndarray:
    """The pre-vectorisation per-row vote loop, kept as the before/after
    baseline for the KNN benchmark and its equality check."""
    Z = (check_array(X) - model._mu) / model._sigma
    k = min(model.n_neighbors, model._train.shape[0])
    votes = np.zeros((Z.shape[0], len(model.classes_)), dtype=np.float64)
    chunk = max(1, 2_000_000 // max(1, model._train.shape[0]))
    for start in range(0, Z.shape[0], chunk):
        block = Z[start : start + chunk]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ model._train.T
            + np.sum(model._train**2, axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
        for i, row in enumerate(nearest):
            if model.weights == "distance":
                w = 1.0 / (np.sqrt(d2[i, row]) + 1e-12)
            else:
                w = np.ones(k)
            np.add.at(votes[start + i], model._encoded[row], w)
    return votes


def run_bench(
    seed: int = 0,
    n_jobs: int | None = None,
    smoke: bool = False,
    out: str = "BENCH_ml.json",
) -> int:
    """Run the benchmark; returns a non-zero exit code if any serial vs
    parallel output mismatch is detected."""
    n_samples, n_features, n_splits = (240, 10, 5) if smoke else (600, 16, 10)
    max_jobs = resolve_n_jobs(n_jobs if n_jobs is not None else (2 if smoke else 0))
    X, y = make_bench_dataset(n_samples, n_features, seed)
    failures: list[str] = []
    payload: dict = {
        "machine": _machine_info(),
        "smoke": smoke,
        "seed": seed,
        "n_jobs": max_jobs,
        "dataset": {"n_samples": n_samples, "n_features": n_features},
        "cv": [],
    }

    print(f"bench: {n_samples}x{n_features} dataset, n_jobs 1 vs {max_jobs}")
    for name, estimator in _cv_suite(smoke, random_state=seed).items():
        serial, t_serial = _timed(
            cross_validate, estimator, X, y,
            n_splits=n_splits, random_state=seed, name=name, n_jobs=1,
        )
        parallel, t_parallel = _timed(
            cross_validate, estimator, X, y,
            n_splits=n_splits, random_state=seed, name=name, n_jobs=max_jobs,
        )
        equal = serial.summary() == parallel.summary()
        if not equal:
            failures.append(f"cv[{name}]: serial and parallel summaries differ")
        payload["cv"].append(
            {
                "model": name,
                "fit_seconds_serial": round(t_serial, 4),
                "fit_seconds_parallel": round(t_parallel, 4),
                "speedup": _speedup(t_serial, t_parallel),
                "outputs_equal": equal,
            }
        )
        print(
            f"  cv {name:>4}: {t_serial:7.3f}s -> {t_parallel:7.3f}s "
            f"({_speedup(t_serial, t_parallel)}x, equal={equal})"
        )

    # Per-tree forest parallelism: importances must merge in tree order.
    n_trees = 40 if smoke else 150
    f_serial, t_serial = _timed(
        RandomForestClassifier(n_estimators=n_trees, random_state=seed, n_jobs=1).fit,
        X, y,
    )
    f_parallel, t_parallel = _timed(
        RandomForestClassifier(
            n_estimators=n_trees, random_state=seed, n_jobs=max_jobs
        ).fit,
        X, y,
    )
    forest_equal = bool(
        np.array_equal(f_serial.feature_importances_, f_parallel.feature_importances_)
        and f_serial.oob_score() == f_parallel.oob_score()
    )
    if not forest_equal:
        failures.append("forest: importances or OOB score differ across n_jobs")
    payload["forest"] = {
        "n_estimators": n_trees,
        "fit_seconds_serial": round(t_serial, 4),
        "fit_seconds_parallel": round(t_parallel, 4),
        "speedup": _speedup(t_serial, t_parallel),
        "outputs_equal": forest_equal,
    }
    print(
        f"  forest ({n_trees} trees): {t_serial:.3f}s -> {t_parallel:.3f}s "
        f"({payload['forest']['speedup']}x, equal={forest_equal})"
    )

    # KNN predict: vectorised all-pairs scatter vs the old per-row loop.
    knn = KNeighborsClassifier(n_neighbors=5).fit(X, y)
    loop_votes, t_loop = _timed(_reference_knn_votes, knn, X)
    fast_votes, t_fast = _timed(knn._neighbor_votes, X)
    knn_equal = bool(np.array_equal(loop_votes, fast_votes))
    if not knn_equal:
        failures.append("knn: vectorised votes differ from the per-row loop")
    payload["knn"] = {
        "rows": n_samples,
        "loop_seconds": round(t_loop, 4),
        "vectorized_seconds": round(t_fast, 4),
        "speedup": _speedup(t_loop, t_fast),
        "outputs_equal": knn_equal,
    }
    print(
        f"  knn predict: loop {t_loop:.3f}s -> vectorised {t_fast:.3f}s "
        f"({payload['knn']['speedup']}x, equal={knn_equal})"
    )

    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {out}")

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


# -- lint suite (DESIGN.md §10) ----------------------------------------------


def run_lint_bench(
    n_jobs: int | None = None,
    smoke: bool = False,
    out: str = "BENCH_lint.json",
    paths: list[str] | None = None,
) -> int:
    """Benchmark the statan two-phase analysis, serial vs fanned out.

    Asserts the determinism contract: the full finding list (rules,
    positions, messages, fingerprints) must be byte-identical at any
    worker count.  Returns non-zero on mismatch.  Speedups are recorded,
    not asserted — single-core runners legitimately measure ~1x.
    """
    import os.path

    from .statan.engine import analyze_tree

    if paths is None:
        paths = ["src"] if os.path.isdir("src") else ["."]
    max_jobs = resolve_n_jobs(n_jobs if n_jobs is not None else (2 if smoke else 0))
    rounds = 1 if smoke else 3
    failures: list[str] = []

    def run_once(jobs: int):
        result = None
        for _ in range(rounds):
            result = analyze_tree(paths, n_jobs=jobs)
        return result

    (serial_findings, stats), t_serial = _timed(run_once, 1)
    (parallel_findings, _), t_parallel = _timed(run_once, max_jobs)

    serial_bytes = json.dumps([f.to_json() for f in serial_findings])
    parallel_bytes = json.dumps([f.to_json() for f in parallel_findings])
    equal = serial_bytes == parallel_bytes
    if not equal:
        failures.append("lint: findings differ between serial and parallel runs")

    payload = {
        "machine": _machine_info(),
        "smoke": smoke,
        "n_jobs": max_jobs,
        "rounds": rounds,
        "paths": paths,
        "stats": stats,
        "findings": len(serial_findings),
        "by_rule": {
            rule: sum(1 for f in serial_findings if f.rule == rule)
            for rule in sorted({f.rule for f in serial_findings})
        },
        "lint_seconds_serial": round(t_serial, 4),
        "lint_seconds_parallel": round(t_parallel, 4),
        "speedup": _speedup(t_serial, t_parallel),
        "outputs_equal": equal,
    }
    print(
        f"bench lint: {stats.get('files', 0)} files x{rounds}: "
        f"{t_serial:.3f}s -> {t_parallel:.3f}s at n_jobs {max_jobs} "
        f"({payload['speedup']}x, equal={equal})"
    )
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {out}")

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


# -- data-plane suite (DESIGN.md §9, §11) ------------------------------------


def _make_fast_run_docs(
    n_installs: int, runs_per_install: int, root_seed: int
) -> list[dict]:
    """Deterministic fast-run payloads shaped like the wire records."""
    (seed,) = spawn_seeds(root_seed, 1)
    rng = np.random.default_rng(seed)
    docs: list[dict] = []
    for i in range(n_installs):
        install_id = f"inst{i:05d}"
        for r in range(runs_per_install):
            start = float(r) * 120.0 + float(rng.random())
            docs.append(
                {
                    "install_id": install_id,
                    "participant_id": str(100_000 + i),
                    "start": start,
                    "end": start + 100.0,
                    "period": 5.0,
                    "foreground": (
                        None
                        if rng.random() < 0.3
                        else f"app{int(rng.integers(50))}"
                    ),
                    "screen_on": bool(rng.random() < 0.5),
                    "battery": float(rng.random()),
                    "usage_permission": True,
                    "_type": "fast_run",
                }
            )
    return docs


def _data_bench_stores(docs: list[dict], repeats: int = 3):
    """A dict-backed and a columnar ``fast_runs`` collection, both indexed
    on install_id, plus per-backend insert_many timings.

    Each backend ingests into a fresh collection ``repeats`` times and
    keeps the best wall time — the usual guard against scheduler noise
    for a single-shot measurement; the last build is the one handed
    back for the query workloads."""
    from .platform.store import DocumentStore

    collections = {}
    timings = {}
    for backend in ("dict", "columnar"):
        best = float("inf")
        for _ in range(repeats):
            collection = DocumentStore(backend=backend).collection("fast_runs")
            collection.create_index("install_id")
            _, elapsed = _timed(collection.insert_many, docs)
            best = min(best, elapsed)
        collections[backend] = collection
        timings[backend] = best
    return collections["dict"], collections["columnar"], timings


def _query_workloads(docs: list[dict], n_installs: int) -> list[tuple[str, str, object]]:
    """(label, method, argument) triples covering the query language."""
    mid = docs[len(docs) // 2]["start"]
    return [
        ("equality_indexed", "find", {"install_id": f"inst{(n_installs // 2):05d}"}),
        ("range_scan", "find", {"start": {"$gte": mid, "$lt": mid + 4000.0}}),
        ("in_scan", "find", {"foreground": {"$in": ["app1", "app7", "app13"]}}),
        ("exists_scan", "count", {"foreground": {"$exists": True}}),
        ("count_eq", "count", {"screen_on": True}),
        ("distinct", "distinct", "foreground"),
    ]


def _observation_signature(obs) -> tuple:
    """Everything one observation carries, normalized to plain python
    containers so dict-backend and columnar-backend observations compare
    structurally (FrameRow/ColumnRun views materialize to dicts)."""
    return (
        obs.install_id,
        dict(obs.initial) if obs.initial else None,
        [dict(run) for run in obs.slow_runs],
        [dict(run) for run in obs.fast_runs],
        [dict(event) for event in obs.app_changes],
        sorted(obs.google_ids),
        [(package, reviews) for package, reviews in obs.device_reviews.items()],
        obs.all_account_reviews,
        obs.total_snapshots,
        obs.foreground_snapshots,
        obs.install_event_counts,
        obs.reported_accounts,
    )


def _check_baseline(payload: dict, baseline_path: str, failures: list[str]) -> dict:
    """Compare measured speedups against ``bench-baseline.json`` floors.

    Fails (appends to ``failures``) when a tracked workload's speedup
    drops below its recorded floor minus the shared tolerance.  Ratios
    are machine-portable where absolute seconds are not, which is what
    makes this usable as a CI gate on 1-core runners.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    tolerance = float(baseline.get("tolerance", 0.25))
    measured: dict[str, float | None] = {
        "ingest": payload["ingest"].get("speedup"),
        "observations": payload["observations"].get("speedup"),
        "app_features": payload["app_features"].get("speedup"),
        "device_features": payload["device_features"].get("speedup"),
    }
    for entry in payload["queries"]:
        measured[entry["workload"]] = entry.get("speedup")
    checks: dict[str, dict] = {}
    for name, floor in sorted(baseline.get("min_speedups", {}).items()):
        value = measured.get(name)
        ok = value is not None and value >= floor - tolerance
        checks[name] = {"floor": floor, "measured": value, "ok": ok}
        if not ok:
            failures.append(
                f"baseline[{name}]: speedup {value} below floor {floor} "
                f"- tolerance {tolerance}"
            )
    return {"path": baseline_path, "tolerance": tolerance, "checks": checks}


def run_data_bench(
    seed: int = 0,
    smoke: bool = False,
    out: str = "BENCH_data.json",
    baseline: str | None = None,
) -> int:
    """Benchmark the columnar data plane against the dict backend.

    Returns non-zero if any backend pair disagrees on query results,
    any batch feature matrix differs from the scalar path by a byte, or
    (smoke mode, with ``bench-baseline.json`` present) a tracked
    speedup regresses below its committed floor.
    """
    from .core.app_features import app_feature_matrix, app_feature_vector
    from .core.device_features import device_feature_matrix, device_feature_vector
    from .core.observations import build_observations
    from .simulation.config import SimulationConfig
    from .simulation.world import run_study

    n_installs, runs_per_install, query_rounds = (
        (40, 12, 3) if smoke else (200, 50, 10)
    )
    failures: list[str] = []
    payload: dict = {
        "machine": _machine_info(),
        "smoke": smoke,
        "seed": seed,
        "queries": [],
    }

    # 1. Ingest: insert_many into an indexed collection, per backend.
    docs = _make_fast_run_docs(n_installs, runs_per_install, seed)
    dict_col, columnar_col, ingest = _data_bench_stores(docs)
    ingest_equal = dict_col.find() == columnar_col.find()
    if not ingest_equal:
        failures.append("ingest: backends disagree on stored documents")
    payload["ingest"] = {
        "documents": len(docs),
        "dict_seconds": round(ingest["dict"], 4),
        "columnar_seconds": round(ingest["columnar"], 4),
        "speedup": _speedup(ingest["dict"], ingest["columnar"]),
        "outputs_equal": ingest_equal,
    }
    print(
        f"bench data: ingest {len(docs)} docs: dict {ingest['dict']:.3f}s, "
        f"columnar {ingest['columnar']:.3f}s "
        f"({payload['ingest']['speedup']}x, equal={ingest_equal})"
    )

    # 2. Query workloads: same operator language on both backends; the
    # contract is same documents, same order.
    for label, method, argument in _query_workloads(docs, n_installs):
        def run_workload(collection):
            result = None
            for _ in range(query_rounds):
                result = getattr(collection, method)(argument)
            return result

        dict_result, t_dict = _timed(run_workload, dict_col)
        columnar_result, t_columnar = _timed(run_workload, columnar_col)
        equal = dict_result == columnar_result
        if not equal:
            failures.append(f"query[{label}]: backends disagree")
        payload["queries"].append(
            {
                "workload": label,
                "rounds": query_rounds,
                "dict_seconds": round(t_dict, 4),
                "columnar_seconds": round(t_columnar, 4),
                "speedup": _speedup(t_dict, t_columnar),
                "outputs_equal": equal,
            }
        )
        print(
            f"  query {label:>16}: dict {t_dict:7.3f}s -> columnar "
            f"{t_columnar:7.3f}s ({_speedup(t_dict, t_columnar)}x, equal={equal})"
        )

    # 3. End-to-end: simulate once per backend, then time observation
    # assembly (per-install queries vs one-pass frame partitions).
    config = SimulationConfig.small() if smoke else SimulationConfig()
    config = config.scaled(seed=config.seed + seed)
    data_dict = run_study(config.scaled(store_backend="dict"))
    data_columnar = run_study(config.scaled(store_backend="columnar"))
    obs_dict, t_dict = _timed(
        build_observations, data_dict, data_dict.eligible_participants(min_days=2)
    )
    obs_columnar, t_columnar = _timed(
        build_observations,
        data_columnar,
        data_columnar.eligible_participants(min_days=2),
    )
    obs_equal = [_observation_signature(o) for o in obs_dict] == [
        _observation_signature(o) for o in obs_columnar
    ]
    if not obs_equal:
        failures.append("observations: backends disagree on assembled devices")
    payload["observations"] = {
        "devices": len(obs_columnar),
        "dict_seconds": round(t_dict, 4),
        "columnar_seconds": round(t_columnar, 4),
        "speedup": _speedup(t_dict, t_columnar),
        "outputs_equal": obs_equal,
    }
    print(
        f"  observations ({len(obs_columnar)} devices): dict {t_dict:.3f}s -> "
        f"columnar {t_columnar:.3f}s "
        f"({payload['observations']['speedup']}x, equal={obs_equal})"
    )

    # 4. Feature extraction: scalar per-(app, device) loops vs batch
    # column slices.  Must be byte-identical (DESIGN.md §9), and the two
    # backends must agree.  Warm the VT cache first so neither timed
    # path pays the one-time scan cost.
    packages_per_obs = [
        (obs, sorted(obs.observed_packages)) for obs in obs_columnar
    ]
    for obs_, packages in packages_per_obs:
        app_feature_matrix(obs_, packages, data_columnar.catalog, data_columnar.vt_client)

    def scalar_app_pass():
        return [
            np.vstack(
                [
                    app_feature_vector(
                        obs_, p, data_columnar.catalog, data_columnar.vt_client
                    )
                    for p in packages
                ]
            )
            for obs_, packages in packages_per_obs
            if packages
        ]

    def batch_app_pass():
        return [
            app_feature_matrix(
                obs_, packages, data_columnar.catalog, data_columnar.vt_client
            )
            for obs_, packages in packages_per_obs
            if packages
        ]

    scalar_blocks, t_scalar = _timed(scalar_app_pass)
    batch_blocks, t_batch = _timed(batch_app_pass)
    n_rows = int(sum(len(block) for block in batch_blocks))
    app_equal = all(
        s.tobytes() == b.tobytes() for s, b in zip(scalar_blocks, batch_blocks)
    )
    if not app_equal:
        failures.append("features[app]: batch matrix differs from scalar rows")
    payload["app_features"] = {
        "rows": n_rows,
        "scalar_seconds": round(t_scalar, 4),
        "batch_seconds": round(t_batch, 4),
        "speedup": _speedup(t_scalar, t_batch),
        "outputs_equal": app_equal,
    }
    print(
        f"  app features ({n_rows} rows): scalar {t_scalar:.3f}s -> batch "
        f"{t_batch:.3f}s ({payload['app_features']['speedup']}x, equal={app_equal})"
    )

    def scalar_device_pass():
        return np.vstack([device_feature_vector(o, None) for o in obs_columnar])

    scalar_device, t_scalar = _timed(scalar_device_pass)
    batch_device, t_batch = _timed(device_feature_matrix, obs_columnar)
    device_equal = scalar_device.tobytes() == batch_device.tobytes()
    if not device_equal:
        failures.append("features[device]: batch matrix differs from scalar rows")
    payload["device_features"] = {
        "rows": len(obs_columnar),
        "scalar_seconds": round(t_scalar, 4),
        "batch_seconds": round(t_batch, 4),
        "speedup": _speedup(t_scalar, t_batch),
        "outputs_equal": device_equal,
    }
    print(
        f"  device features ({len(obs_columnar)} rows): scalar {t_scalar:.3f}s "
        f"-> batch {t_batch:.3f}s "
        f"({payload['device_features']['speedup']}x, equal={device_equal})"
    )

    # 5. Regression gate: in smoke mode (CI) compare speedups against
    # the committed floors; a missing baseline file skips the gate so
    # ad-hoc runs from other directories still work.
    if baseline is None and smoke:
        baseline = "bench-baseline.json"
    if baseline and os.path.exists(baseline):
        payload["baseline"] = _check_baseline(payload, baseline, failures)
        gate_ok = all(c["ok"] for c in payload["baseline"]["checks"].values())
        print(f"  baseline gate ({baseline}): {'ok' if gate_ok else 'FAIL'}")
    elif baseline:
        print(f"  baseline gate skipped: {baseline} not found")

    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {out}")

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


# -- simulation suite (DESIGN.md §12) ----------------------------------------


def study_digest(data) -> str:
    """SHA-256 over everything one study run produced.

    Covers the server store, the crawled review corpus, per-participant
    device state (events, sessions, installed set, app install ids), the
    campaign board delivery totals, and the rank-tracker series — the
    byte-identity contract of the two-phase engine.  Device ids are
    normalized positionally: they come from a process-global counter, so
    their absolute values differ between *any* two runs in one process,
    independent of worker count.

    Store records are hashed in *canonical* (sorted serialized) order
    per collection, not arrival order: the exactly-once ingest contract
    says faults may move *when* a chunk lands (retries, next-day
    redelivery), never *what* the study contains, so the digest must be
    insensitive to ingest timing while still pinning the full record
    multiset.
    """
    import hashlib

    h = hashlib.sha256()
    device_alias: dict[str, str] = {}
    for participant in data.participants:
        device_alias.setdefault(
            participant.device.device_id, f"dev#{len(device_alias)}"
        )
    for name in sorted(data.server.store.collection_names()):
        for line in sorted(
            json.dumps(record, sort_keys=True, default=str)
            for record in data.server.store[name].find()
        ):
            h.update(line.encode())
    for package in sorted(data.review_crawler.tracked_apps()):
        for review in data.review_store.reviews_for_app(package):
            h.update(
                repr(
                    (review.app_package, review.google_id, review.rating,
                     review.timestamp)
                ).encode()
            )
    for participant in data.participants:
        device = participant.device
        h.update(
            repr(
                (
                    participant.participant_id,
                    device_alias[device.device_id],
                    participant.app.install_id,
                    participant.app.installed_at,
                    participant.app.uninstalled_at,
                    sorted(device.installed),
                    device.battery_level,
                )
            ).encode()
        )
        for event in device.events:
            h.update(
                repr((event.timestamp, int(event.event_type), event.package)).encode()
            )
        for session in device.sessions:
            h.update(repr((session.start, session.end, session.package)).encode())
    for campaign in data.board.campaigns():
        h.update(
            repr(
                (campaign.app_package, campaign.delivered_installs,
                 campaign.delivered_reviews)
            ).encode()
        )
    if data.rank_tracker is not None:
        for package, keyword in data.rank_tracker.tracked():
            for sample in data.rank_tracker.series(package, keyword):
                h.update(
                    repr(
                        (package, keyword, sample.day, sample.rank,
                         sample.install_count, sample.review_count)
                    ).encode()
                )
    return h.hexdigest()


def run_sim_bench(
    seed: int = 0,
    n_jobs: int | None = None,
    smoke: bool = False,
    out: str = "BENCH_sim.json",
    baseline: str | None = None,
) -> int:
    """Benchmark the two-phase day engine, serial vs sharded.

    Times ``run_study`` at ``n_jobs = 1`` versus ``n_jobs = max`` in
    device-days/sec and asserts the identity contract: both runs must
    produce the same :func:`study_digest`.  Returns non-zero on a digest
    mismatch, or (with a baseline file on a multi-core runner) when the
    measured speedup falls below the committed ``sim`` floor.
    """
    from .simulation.config import SimulationConfig
    from .simulation.world import run_study

    config = SimulationConfig.small() if smoke else SimulationConfig()
    config = config.scaled(seed=config.seed + seed)
    max_jobs = resolve_n_jobs(n_jobs if n_jobs is not None else 0)
    failures: list[str] = []

    serial_data, t_serial = _timed(run_study, config, 1)
    sharded_data, t_sharded = _timed(run_study, config, max_jobs)

    device_days = sum(p.active_days for p in serial_data.participants)
    serial_digest = study_digest(serial_data)
    sharded_digest = study_digest(sharded_data)
    equal = serial_digest == sharded_digest
    if not equal:
        failures.append(
            f"sim: sharded study output diverged from serial "
            f"({sharded_digest[:16]} != {serial_digest[:16]})"
        )

    payload: dict = {
        "machine": _machine_info(),
        "smoke": smoke,
        "seed": seed,
        "n_jobs": max_jobs,
        "participants": len(serial_data.participants),
        "device_days": device_days,
        "study_digest": serial_digest,
        "serial_seconds": round(t_serial, 4),
        "sharded_seconds": round(t_sharded, 4),
        "device_days_per_sec_serial": round(device_days / t_serial, 2)
        if t_serial > 0
        else None,
        "device_days_per_sec_sharded": round(device_days / t_sharded, 2)
        if t_sharded > 0
        else None,
        "speedup": _speedup(t_serial, t_sharded),
        "outputs_equal": equal,
    }
    print(
        f"bench sim: {device_days} device-days: serial {t_serial:.3f}s "
        f"({payload['device_days_per_sec_serial']}/s) -> n_jobs {max_jobs} "
        f"{t_sharded:.3f}s ({payload['device_days_per_sec_sharded']}/s, "
        f"{payload['speedup']}x, equal={equal})"
    )

    # Speedup-floor gate.  A single-core runner cannot demonstrate a
    # parallel speedup, so the floor only applies when the fan-out had
    # at least two cores to work with.
    if baseline is None and smoke:
        baseline = "bench-baseline.json"
    cores = os.cpu_count() or 1
    if baseline and os.path.exists(baseline) and cores >= 2 and max_jobs >= 2:
        with open(baseline) as handle:
            floors = json.load(handle).get("sim", {})
        floor = floors.get("min_speedup")
        if floor is not None:
            ok = payload["speedup"] >= floor
            payload["baseline"] = {
                "path": baseline,
                "min_speedup": floor,
                "ok": ok,
            }
            if not ok:
                failures.append(
                    f"baseline[sim]: speedup {payload['speedup']} below "
                    f"floor {floor}"
                )
            print(f"  baseline gate ({baseline}): {'ok' if ok else 'FAIL'}")
    elif baseline:
        reason = (
            f"{baseline} not found"
            if not os.path.exists(baseline)
            else f"needs >= 2 cores (have {cores}, n_jobs {max_jobs})"
        )
        print(f"  baseline gate skipped: {reason}")

    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {out}")

    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0
