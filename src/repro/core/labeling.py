"""App labeling rules for the train-and-validate dataset (§7.2).

The paper holds out 20% of worker devices and 42% of regular devices and
labels apps by co-installation evidence:

* **suspicious** — advertised for promotion on the infiltrated Facebook
  groups (our campaign board), installed on at least five of the
  held-out worker devices, and not installed on any held-out regular
  device;
* **regular (non-suspicious)** — not installed on any worker device,
  installed on at least one held-out regular device, and carrying at
  least 15,000 Play reviews (popularity evidence).

Instances are (app, device) pairs over the held-out devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation.world import StudyData
from .observations import DeviceObservation

__all__ = ["LabelingConfig", "LabelingResult", "split_holdout", "label_apps"]


@dataclass(frozen=True)
class LabelingConfig:
    """Thresholds of the §7.2 labeling rules."""

    worker_holdout_fraction: float = 0.20
    regular_holdout_fraction: float = 0.42
    min_worker_devices: int = 5
    min_reviews_for_regular: int = 15_000
    seed: int = 7


@dataclass
class LabelingResult:
    """Labeled app sets plus the device split that produced them."""

    suspicious_apps: frozenset[str]
    regular_apps: frozenset[str]
    holdout_worker: list[DeviceObservation]
    holdout_regular: list[DeviceObservation]
    remaining: list[DeviceObservation]


def split_holdout(
    observations: list[DeviceObservation], config: LabelingConfig
) -> tuple[list[DeviceObservation], list[DeviceObservation], list[DeviceObservation]]:
    """Randomly set aside the labeling devices (workers, regulars, rest)."""
    rng = np.random.default_rng(config.seed)
    workers = [o for o in observations if o.is_worker]
    regulars = [o for o in observations if not o.is_worker]
    n_w = max(1, int(round(config.worker_holdout_fraction * len(workers))))
    n_r = max(1, int(round(config.regular_holdout_fraction * len(regulars))))
    worker_idx = set(rng.choice(len(workers), size=min(n_w, len(workers)), replace=False).tolist())
    regular_idx = set(rng.choice(len(regulars), size=min(n_r, len(regulars)), replace=False).tolist())
    holdout_w = [o for i, o in enumerate(workers) if i in worker_idx]
    holdout_r = [o for i, o in enumerate(regulars) if i in regular_idx]
    remaining = [o for i, o in enumerate(workers) if i not in worker_idx] + [
        o for i, o in enumerate(regulars) if i not in regular_idx
    ]
    return holdout_w, holdout_r, remaining


def label_apps(
    data: StudyData,
    observations: list[DeviceObservation],
    config: LabelingConfig | None = None,
) -> LabelingResult:
    """Apply the §7.2 rules over the held-out devices."""
    config = config or LabelingConfig(
        min_reviews_for_regular=data.config.popular_review_threshold
    )
    holdout_w, holdout_r, remaining = split_holdout(observations, config)

    advertised = data.board.advertised_packages()
    all_worker_packages: set[str] = set()
    for obs in (o for o in observations if o.is_worker):
        all_worker_packages.update(obs.observed_packages)
    holdout_regular_packages: set[str] = set()
    for obs in holdout_r:
        holdout_regular_packages.update(obs.observed_packages)

    # Suspicious: advertised + co-installed on >= N held-out worker
    # devices + absent from held-out regular devices.
    worker_install_counts: dict[str, int] = {}
    for obs in holdout_w:
        for package in obs.observed_packages:
            worker_install_counts[package] = worker_install_counts.get(package, 0) + 1
    suspicious = frozenset(
        package
        for package, count in worker_install_counts.items()
        if package in advertised
        and count >= config.min_worker_devices
        and package not in holdout_regular_packages
    )

    # Regular: on a held-out regular device, never on a worker device,
    # and popular on the Play Store.
    regular: set[str] = set()
    for obs in holdout_r:
        for package in obs.observed_packages:
            if package in all_worker_packages:
                continue
            if package not in data.catalog:
                continue
            app = data.catalog.get(package)
            if app.preinstalled:
                continue
            if app.review_count >= config.min_reviews_for_regular:
                regular.add(package)

    return LabelingResult(
        suspicious_apps=suspicious,
        regular_apps=frozenset(regular),
        holdout_worker=holdout_w,
        holdout_regular=holdout_r,
        remaining=remaining,
    )
