"""Fault-injecting channel between the mobile app and the server.

Extends the reliable :class:`~repro.platform.transport.Transport` with
the client-observed sites of a :class:`~repro.faults.plan.FaultPlan`:
loss, corruption, and — the interesting one — *ack loss after durable
store*, where the receiver keeps the chunk but the acknowledgement
vanishes, so the sender must retransmit bytes the server already has.
Exactly-once ingest is the server-side dedup window absorbing that
retransmission.

All firing decisions draw from an injected seeded Generator dedicated
to transport faults, never from the behaviour stream.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..platform.transport import Transport
from .plan import FaultPlan

__all__ = ["FaultyTransport"]


class FaultyTransport(Transport):
    """Channel driven by a :class:`FaultPlan`'s transport sites.

    ``day`` scopes day-windowed specs; :meth:`heal` suspends injection
    (the end-of-study drain: the network recovers and every surviving
    chunk gets through).
    """

    def __init__(
        self,
        receiver,
        *,
        plan: FaultPlan,
        rng: np.random.Generator,
        day: int = 0,
    ) -> None:
        super().__init__(receiver)
        if rng is None:
            raise ValueError("FaultyTransport requires an explicit rng")
        self._plan = plan
        self._rng = rng
        self._day = int(day)
        self._injecting = True
        self.chunks_lost = 0
        self.chunks_corrupted = 0
        self.acks_lost = 0

    def set_day(self, day: int) -> None:
        self._day = int(day)

    def heal(self) -> None:
        """Stop injecting; subsequent sends behave like the reliable
        channel."""
        self._injecting = False

    def send(self, kind: str, data: bytes) -> str | None:
        self.chunks_sent += 1
        self.bytes_sent += len(data)
        obs.counter("transport_chunks_sent_total", {"kind": kind}).inc()
        obs.counter("transport_bytes_sent_total").inc(len(data))
        if self._injecting:
            if self._plan.transport_loss.fires(self._rng, self._day):
                self.chunks_lost += 1
                obs.counter("transport_chunks_lost_total").inc()
                return None  # chunk vanished in transit: no ack
            if self._plan.transport_corruption.fires(self._rng, self._day):
                self.chunks_corrupted += 1
                obs.counter("transport_chunks_corrupted_total").inc()
                corrupted = bytes([data[0] ^ 0xFF]) + data[1:]
                # The receiver sees (and counts) the damaged bytes; its
                # ack hashes what it received and will not match.
                return self._receiver.receive_chunk(kind, corrupted)
            if self._plan.ack_loss.fires(self._rng, self._day):
                # Ack loss AFTER durable store: the receiver keeps the
                # chunk, the acknowledgement never arrives, and the
                # sender retransmits bytes the server already has.
                ack = self._receiver.receive_chunk(kind, data)
                if ack is not None:
                    self.acks_lost += 1
                    obs.counter("transport_acks_lost_total").inc()
                return None
        return self._receiver.receive_chunk(kind, data)
