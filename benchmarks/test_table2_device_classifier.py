"""Bench: Table 2 — device classifier (XGB/RF/SVM/KNN/LVQ) with SMOTE,
plus the §8.2 sampling-strategy variants."""

from repro.core.device_classifier import DEVICE_ALGORITHMS
from repro.experiments import run_experiment
from repro.experiments.common import ExperimentReport
from repro.ml import cross_validate
from repro.reporting import render_table


def test_table2_device_classifier(benchmark, workbench, pipeline_result, emit):
    dataset = pipeline_result.device_dataset
    benchmark.pedantic(
        cross_validate,
        args=(DEVICE_ALGORITHMS(0)["XGB"], dataset.X, dataset.y),
        kwargs={"n_splits": 10, "resample": "smote", "random_state": 0},
        rounds=1,
        iterations=1,
    )
    report = emit(run_experiment("table2", workbench))
    # Shape: XGB at (or within noise of) the top — the paper's XGB-RF
    # gap is only 0.3pp (95.29 vs 94.99) — precision prioritised, low
    # FPR, LVQ weakest with a recall deficit.
    best_f1 = max(v for k, v in report.metrics.items() if k.endswith("_f1"))
    assert report.metrics["XGB_f1"] >= best_f1 - 0.02
    assert report.metrics["XGB_f1"] >= 0.9
    assert report.metrics["xgb_fpr"] <= 0.1
    assert report.metrics["LVQ_f1"] == min(
        value for key, value in report.metrics.items() if key.endswith("_f1")
    )


def test_table2_sampling_variants(benchmark, workbench, pipeline_result, emit):
    """§8.2: no-sampling vs SMOTE vs undersampling for XGB."""
    dataset = pipeline_result.device_dataset
    benchmark(lambda: dataset.X.shape)  # registers under --benchmark-only
    rows = []
    metrics = {}
    for strategy in ("none", "smote", "undersample"):
        cv = cross_validate(
            DEVICE_ALGORITHMS(0)["XGB"],
            dataset.X,
            dataset.y,
            n_splits=10,
            resample=None if strategy == "none" else strategy,
            random_state=0,
        )
        rows.append((strategy, cv.precision, cv.recall, cv.f1, cv.auc))
        metrics[strategy] = cv.f1
    report = ExperimentReport(
        "table2_sampling", "Table 2 sampling variants (XGB)",
        lines=[render_table(["sampling", "precision", "recall", "F1", "AUC"], rows)],
        metrics=metrics,
    )
    emit(report)
    # All strategies stay in the same F1 band (paper: 95.18-96.86%).
    assert min(metrics.values()) >= 0.88
