#!/usr/bin/env python3
"""Full §6 measurement report: regenerate every measurement figure
(Figs 1, 4-12) as paper-vs-measured tables from one simulated study.

Run:  python examples/measurement_report.py [--scale small|default]
"""

import argparse
import sys

from repro.experiments import run_experiment, shared_workbench

MEASUREMENT_EXPERIMENTS = (
    "fig00", "fig01", "fig04", "fig05", "fig06", "fig07",
    "fig08", "fig09", "fig10", "fig11", "fig12",
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("small", "default", "paper"),
        default="small",
        help="cohort scale (default: small; 'default' matches the paper's "
        "178+88 classifier cohort; 'paper' is the full 803-device run)",
    )
    args = parser.parse_args()

    workbench = shared_workbench(args.scale)
    for experiment_id in MEASUREMENT_EXPERIMENTS:
        print(run_experiment(experiment_id, workbench).render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
