"""Analysis engine: parse modules, run rules, apply suppressions.

The engine is purely syntactic — one ``ast.parse`` per file, an import
alias table so rules can resolve ``np.random.default_rng`` through
``import numpy as np``, and a comment scan for inline suppressions:

* ``# statan: disable=RULE1,RULE2`` on the flagged line suppresses
  those rules for that line only;
* ``# statan: disable-file=RULE1`` anywhere in the file suppresses the
  rules for the whole file;
* the rule list may be ``ALL``.

Findings come back fingerprinted (see :mod:`repro.statan.findings`) so
the baseline layer can match them across line-number drift.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from .findings import SEVERITY_ERROR, Finding, assign_fingerprints
from .rules import Rule, all_rules

__all__ = [
    "ModuleContext",
    "analyze_source",
    "analyze_paths",
    "iter_python_files",
    "collect_suppressions",
]

#: Pseudo-rule id attached to files that fail to parse.
SYNTAX_RULE = "SYNTAX"

_DISABLE_RE = re.compile(
    r"#\s*statan:\s*disable(?P<scope>-file)?\s*=\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def collect_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Return (line -> suppressed rule ids, file-wide rule ids)."""
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        if match.group("scope"):
            per_file |= rules
        else:
            per_line.setdefault(lineno, set()).update(rules)
    return per_line, per_file


def _collect_imports(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted modules/objects they refer to.

    Relative imports are normalised by dropping the leading dots, so
    ``from .. import obs`` maps ``obs`` to ``obs`` and rules match on
    dotted-name *tails*.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    # `import numpy.random` binds only the root name.
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                dotted = f"{base}.{alias.name}" if base else alias.name
                table[alias.asname or alias.name] = dotted
    return table


class ModuleContext:
    """Everything a rule needs to analyse one module."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.segments = PurePosixPath(path).parts
        self.imports = _collect_imports(tree)

    # -- helpers rules lean on ------------------------------------------------
    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of a Name/Attribute chain with aliases expanded,
        or None when the chain roots in a local (unimported) name."""
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def in_package(self, names: Iterable[str]) -> bool:
        wanted = set(names)
        return any(segment in wanted for segment in self.segments)


def matches_tail(resolved: str | None, tail: str) -> bool:
    """True when ``resolved`` is ``tail`` or ends with ``.tail`` on a
    segment boundary (``repro.obs.configure`` matches ``obs.configure``,
    ``myobs.configure`` does not)."""
    if resolved is None:
        return False
    return resolved == tail or resolved.endswith("." + tail)


def analyze_source(
    source: str,
    path: str = "<snippet>",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Analyse one module's source; returns fingerprinted findings with
    suppressions already applied."""
    # Rules register on import; defer to avoid a cycle at module load.
    from . import checks  # noqa: F401

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            rule=SYNTAX_RULE,
            severity=SEVERITY_ERROR,
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
        )
        return assign_fingerprints([finding])

    ctx = ModuleContext(path, source, tree)
    per_line, per_file = collect_suppressions(source)
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if finding.rule in per_file or "ALL" in per_file:
                continue
            line_rules = per_line.get(finding.line, set())
            if finding.rule in line_rules or "ALL" in line_rules:
                continue
            findings.append(finding)
    return assign_fingerprints(findings)


def iter_python_files(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """Expand files/directories into (absolute file, relative label)
    pairs.  Directory trees are walked in sorted order so reports and
    fingerprints are independent of filesystem enumeration order."""
    out: list[tuple[Path, str]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            for file in sorted(root.rglob("*.py")):
                out.append((file, file.relative_to(root).as_posix()))
        else:
            out.append((root, root.name))
    return out


def analyze_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Analyse every ``*.py`` under ``paths``; findings are sorted by
    (path, line, col, rule)."""
    findings: list[Finding] = []
    for file, label in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, path=label, rules=rules))
    return sorted(findings, key=Finding.sort_key)
