"""Bench: Figure 11 permissions of cohort-exclusive apps."""

from repro.analysis import compute_app_permissions
from repro.experiments import run_experiment


def test_fig11_permissions(benchmark, workbench, emit):
    benchmark(compute_app_permissions, workbench.observations, workbench.data.catalog)
    report = emit(run_experiment("fig11", workbench))
    # Similar typical profiles; worker-exclusive apps own the extreme
    # dangerous-permission tail.
    assert report.metrics["worker_dangerous_max"] >= report.metrics["regular_dangerous_max"]
    assert report.metrics["worker_dangerous_mean"] <= report.metrics["regular_dangerous_mean"] * 4
