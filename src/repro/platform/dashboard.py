"""Internal dashboard: the researchers' data-collection monitor (§3).

"The internal dashboard allows researchers to monitor the data
collection process, and test and validate the data sent from the app to
the server."  This module computes the monitoring summaries and runs
the validation checks the paper's dashboard surfaced: per-install
reporting health, snapshot rates, collection gaps, ingest statistics,
and schema/consistency validation of stored documents.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulation.clock import SECONDS_PER_DAY
from .server import RacketStoreServer

__all__ = ["InstallHealth", "ValidationIssue", "Dashboard"]


@dataclass(frozen=True)
class InstallHealth:
    """Per-install reporting summary shown on the dashboard."""

    install_id: str
    participant_id: str
    active_days: float
    snapshots: int
    snapshots_per_day: float
    fast_runs: int
    slow_runs: int
    app_changes: int
    reported_accounts: bool
    reported_usage: bool
    largest_gap_hours: float

    @property
    def healthy(self) -> bool:
        """The paper's Fig-4 health bar: at least 100 snapshots/day."""
        return self.snapshots_per_day >= 100


@dataclass(frozen=True)
class ValidationIssue:
    """One failed validation check."""

    install_id: str
    check: str
    detail: str


class Dashboard:
    """Monitoring and validation over the server's document store."""

    def __init__(self, server: RacketStoreServer) -> None:
        self._server = server
        self._healths: list[InstallHealth] | None = None

    # -- monitoring --------------------------------------------------------
    def install_health(self, install_id: str) -> InstallHealth | None:
        interval = self._server.observation_interval(install_id)
        install_doc = self._server.store["installs"].find_one({"install_id": install_id})
        if interval is None or install_doc is None:
            return None
        fast = self._server.fast_runs(install_id)
        slow = self._server.slow_runs(install_id)
        first, last = interval
        active_days = max((last - first) / SECONDS_PER_DAY, 1e-9)
        snapshots = self._server.snapshot_count(install_id)

        # Largest reporting gap between consecutive coverage windows.
        edges = sorted(
            [(run["start"], run["end"]) for run in fast]
            + [(run["start"], run["end"]) for run in slow]
        )
        largest_gap = 0.0
        for (_, prev_end), (next_start, _) in zip(edges, edges[1:]):
            largest_gap = max(largest_gap, next_start - prev_end)

        return InstallHealth(
            install_id=install_id,
            participant_id=install_doc["participant_id"],
            active_days=active_days,
            snapshots=snapshots,
            snapshots_per_day=snapshots / active_days,
            fast_runs=len(fast),
            slow_runs=len(slow),
            app_changes=len(self._server.app_changes(install_id)),
            reported_accounts=any(
                run.get("accounts_permission", True) and run["accounts"]
                for run in slow
            ),
            reported_usage=any(
                run.get("usage_permission", True) and run["foreground"]
                for run in fast
            ),
            largest_gap_hours=largest_gap / 3600.0,
        )

    def fleet_health(self, refresh: bool = False) -> list[InstallHealth]:
        """Per-install health for the whole fleet, computed once.

        ``install_health`` re-sorts every install's fast/slow runs, so
        recomputing it per caller made ``overview`` + ``lagging_installs``
        O(N²) over installs; both now share this cached list.  Pass
        ``refresh=True`` after more chunks arrive.
        """
        if refresh or self._healths is None:
            self._healths = [
                h
                for install_id in self._server.install_ids()
                if (h := self.install_health(install_id)) is not None
            ]
        return self._healths

    def overview(self) -> dict[str, float]:
        """Fleet-level numbers: the dashboard's landing page.

        Ingest counters come straight from the server's metrics registry
        (via its :class:`~repro.platform.server.IngestStats` view) rather
        than being recomputed from stored documents.
        """
        healths = self.fleet_health()
        stats = self._server.stats
        healthy = sum(1 for h in healths if h.healthy)
        return {
            "installs": float(len(healths)),
            "healthy_installs": float(healthy),
            "healthy_fraction": healthy / len(healths) if healths else 0.0,
            "total_snapshots": float(sum(h.snapshots for h in healths)),
            "chunks_received": float(stats.chunks_received),
            "bytes_received": float(stats.bytes_received),
            "malformed_chunks": float(stats.malformed_chunks),
            "malformed_records": float(stats.malformed_records),
            "records_inserted": float(stats.records_inserted),
        }

    def lagging_installs(self, min_snapshots_per_day: float = 100.0) -> list[InstallHealth]:
        """Installs below the reporting-health threshold."""
        return [
            h
            for h in self.fleet_health()
            if h.snapshots_per_day < min_snapshots_per_day
        ]

    # -- validation --------------------------------------------------------
    def validate(self) -> list[ValidationIssue]:
        """Run consistency checks over every install's stored documents."""
        issues: list[ValidationIssue] = []
        for install_id in self._server.install_ids():
            issues.extend(self._validate_install(install_id))
        return issues

    def _validate_install(self, install_id: str) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []

        def issue(check: str, detail: str) -> None:
            issues.append(ValidationIssue(install_id, check, detail))

        initial = self._server.initial_snapshot(install_id)
        if initial is None:
            issue("initial_snapshot_present", "no initial snapshot stored")

        for run in self._server.fast_runs(install_id):
            if run["end"] < run["start"]:
                issue("run_interval", f"fast run ends before start at {run['start']}")
            if run["period"] != 5.0:
                issue("fast_period", f"unexpected fast period {run['period']}")
        for run in self._server.slow_runs(install_id):
            if run["end"] < run["start"]:
                issue("run_interval", f"slow run ends before start at {run['start']}")
            if run["period"] != 120.0:
                issue("slow_period", f"unexpected slow period {run['period']}")

        # App-change consistency: an uninstall must follow knowledge of
        # the package (initial snapshot or a prior install event).
        known = {
            a["package"] for a in (initial or {}).get("installed_apps", ())
        }
        for event in self._server.app_changes(install_id):
            if event["action"] == "install":
                known.add(event["package"])
            elif event["package"] not in known:
                issue(
                    "uninstall_without_install",
                    f"uninstall of never-seen package {event['package']}",
                )
        return issues
