"""Figure-data export: raw series behind each figure, as CSV.

The benchmark reports are ASCII tables; downstream users who want to
*plot* the figures (with matplotlib, gnuplot, R, ...) need the raw
series.  ``export_figure_data`` writes one CSV per figure into a
directory, mirroring the paper's plots: scatter points for Figs 4/9/10/
12/15, per-review delays for Fig 7, per-device counts for Figs 5/6/8.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..analysis import (
    compute_accounts,
    compute_churn,
    compute_daily_use,
    compute_engagement,
    compute_install_to_review,
    compute_malware,
    compute_stopped_apps,
)

__all__ = ["export_figure_data"]


def _write(path: Path, header: list[str], rows) -> int:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        count = 0
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def export_figure_data(workbench, out_dir: str | Path) -> dict[str, int]:
    """Write one CSV per figure; returns figure-id -> row count."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    observations = workbench.observations
    written: dict[str, int] = {}

    engagement = compute_engagement(workbench.all_observations)
    written["fig04"] = _write(
        out / "fig04_engagement.csv",
        ["install_id", "group", "snapshots_per_day", "active_days"],
        (
            (p.install_id, "worker" if p.is_worker else "regular",
             f"{p.snapshots_per_day:.2f}", p.active_days)
            for p in engagement.points
        ),
    )

    accounts = compute_accounts(observations)
    written["fig05"] = _write(
        out / "fig05_accounts.csv",
        ["group", "gmail_accounts", "account_types", "non_gmail_accounts"],
        (
            ("worker" if o.is_worker else "regular",
             o.n_gmail_accounts, o.n_account_types, o.n_non_gmail_accounts)
            for o in observations
            if o.reported_account_data and o.reported_accounts
        ),
    )

    written["fig06"] = _write(
        out / "fig06_installed_reviewed.csv",
        ["group", "installed", "installed_and_reviewed", "total_reviews"],
        (
            ("worker" if o.is_worker else "regular",
             o.n_installed_apps, o.n_installed_and_reviewed, o.total_account_reviews)
            for o in observations
            if o.initial is not None
        ),
    )

    i2r = compute_install_to_review(observations)
    written["fig07"] = _write(
        out / "fig07_install_to_review.csv",
        ["group", "delay_days"],
        [("worker", f"{d:.4f}") for d in i2r.worker_delays_days]
        + [("regular", f"{d:.4f}") for d in i2r.regular_delays_days],
    )

    stopped = compute_stopped_apps(observations)
    written["fig08"] = _write(
        out / "fig08_stopped_apps.csv",
        ["group", "stopped_apps"],
        [("worker", v) for v in stopped.worker_counts]
        + [("regular", v) for v in stopped.regular_counts],
    )

    churn = compute_churn(observations)
    written["fig09"] = _write(
        out / "fig09_churn.csv",
        ["install_id", "group", "daily_installs", "daily_uninstalls"],
        (
            (p.install_id, "worker" if p.is_worker else "regular",
             f"{p.daily_installs:.3f}", f"{p.daily_uninstalls:.3f}")
            for p in churn.points
        ),
    )

    daily = compute_daily_use(observations)
    written["fig10"] = _write(
        out / "fig10_daily_use.csv",
        ["install_id", "group", "apps_used_per_day", "apps_installed"],
        (
            (p.install_id, "worker" if p.is_worker else "regular",
             f"{p.apps_used_per_day:.3f}", p.apps_installed)
            for p in daily.points
        ),
    )

    malware = compute_malware(observations, workbench.data.vt_client, workbench.data.catalog)
    written["fig12"] = _write(
        out / "fig12_malware.csv",
        ["apk_hash", "vt_flags", "worker_devices", "regular_devices"],
        (
            (s.apk_hash, s.vt_flags, s.worker_devices, s.regular_devices)
            for s in malware.samples
        ),
    )

    verdicts = workbench.pipeline_result.worker_verdicts()
    written["fig15"] = _write(
        out / "fig15_suspiciousness.csv",
        ["install_id", "app_suspiciousness", "installed_and_reviewed", "predicted_worker"],
        (
            (v.install_id, f"{v.app_suspiciousness:.4f}",
             v.n_installed_and_reviewed, int(v.predicted_worker))
            for v in verdicts
        ),
    )
    return written
