"""Dict vs columnar store backends: same query language, same results.

The contract (DESIGN.md §9): for any query both backends return the
same documents in the same order through the same public API.  Every
``_OPERATORS`` operator is exercised on both backends, with and without
indexes, on generic and schema-typed collections.
"""

import pytest

from repro.platform.store import _OPERATORS, Collection, ColumnarCollection, DocumentStore

BACKENDS = ("dict", "columnar")

DOCS = [
    {"name": "ana", "age": 30, "city": "lima"},
    {"name": "bob", "age": 25, "city": "dhaka"},
    {"name": "eve", "age": 35, "city": "lima"},
    {"name": "sam", "age": 25},
    {"name": "ada", "age": 41, "city": None},
    {"name": "joe", "age": 25, "city": "lima", "tags": ["x", "y"]},
]

#: One query per operator, plus the plain-equality and combined forms.
#: Keys are the operator names so the completeness check below can
#: assert the suite covers the store's whole language.
OPERATOR_QUERIES = {
    "$eq": {"age": {"$eq": 25}},
    "$ne": {"city": {"$ne": "lima"}},
    "$gt": {"age": {"$gt": 25}},
    "$gte": {"age": {"$gte": 30}},
    "$lt": {"age": {"$lt": 30}},
    "$lte": {"age": {"$lte": 25}},
    "$in": {"city": {"$in": ["lima", "quito"]}},
    "$exists": {"city": {"$exists": True}},
}

EXTRA_QUERIES = [
    {},
    {"city": "lima"},
    {"city": None},
    {"nope": "x"},
    {"city": {"$exists": False}},
    {"city": "lima", "age": {"$gte": 26, "$lt": 40}},
    {"age": {"$gt": 24, "$lte": 35}, "name": {"$ne": "bob"}},
]


def build(backend: str, docs=DOCS, index: str | None = None):
    collection = DocumentStore(backend=backend).collection("people")
    if index:
        collection.create_index(index)
    collection.insert_many([dict(doc) for doc in docs])
    return collection


def pairs(index: str | None = None):
    return build("dict", index=index), build("columnar", index=index)


def test_operator_queries_cover_the_language():
    assert set(OPERATOR_QUERIES) == set(_OPERATORS)


@pytest.mark.parametrize("op", sorted(OPERATOR_QUERIES))
def test_every_operator_same_documents_same_order(op):
    query = OPERATOR_QUERIES[op]
    dict_col, columnar_col = pairs()
    assert dict_col.find(query) == columnar_col.find(query)
    assert dict_col.count(query) == columnar_col.count(query)


@pytest.mark.parametrize("query", EXTRA_QUERIES)
def test_plain_and_combined_queries_agree(query):
    dict_col, columnar_col = pairs()
    assert dict_col.find(query) == columnar_col.find(query)
    assert dict_col.find_one(query) == columnar_col.find_one(query)
    assert dict_col.count(query) == columnar_col.count(query)


@pytest.mark.parametrize("backend", BACKENDS)
def test_unknown_operator_raises(backend):
    with pytest.raises(ValueError, match="unknown query operator"):
        build(backend).find({"age": {"$regex": ".*"}})


@pytest.mark.parametrize("backend", BACKENDS)
def test_exists_distinguishes_none_from_missing(backend):
    collection = build(backend)
    present = collection.find({"city": {"$exists": True}})
    # "ada" carries an explicit None -> exists; "sam" has no key at all.
    assert [d["name"] for d in present] == ["ana", "bob", "eve", "ada", "joe"]
    absent = collection.find({"city": {"$exists": False}})
    assert [d["name"] for d in absent] == ["sam"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_missing_key_reads_as_none_for_other_operators(backend):
    collection = build(backend)
    # Equality against None matches both the explicit None and the
    # missing key (historical dict.get semantics).
    assert [d["name"] for d in collection.find({"city": None})] == ["sam", "ada"]
    # Ordering operators never match None/missing.
    assert all(
        "city" in d and d["city"] is not None
        for d in collection.find({"city": {"$gte": ""}})
    )


@pytest.mark.parametrize("index", [None, "city", "age"])
def test_indexed_and_unindexed_paths_agree(index):
    dict_col, columnar_col = pairs(index=index)
    baseline_dict, baseline_columnar = pairs(index=None)
    for query in [*OPERATOR_QUERIES.values(), *EXTRA_QUERIES]:
        expected = baseline_dict.find(query)
        assert baseline_columnar.find(query) == expected
        assert dict_col.find(query) == expected
        assert columnar_col.find(query) == expected


@pytest.mark.parametrize("backend", BACKENDS)
def test_index_updated_after_inserts(backend):
    collection = build(backend, index="city")
    collection.insert({"name": "zoe", "age": 28, "city": "lima"})
    assert [d["name"] for d in collection.find({"city": "lima"})] == [
        "ana",
        "eve",
        "joe",
        "zoe",
    ]


def test_distinct_agrees_including_list_flattening():
    dict_col, columnar_col = pairs()
    for fieldname in ("city", "age", "tags", "nope"):
        assert dict_col.distinct(fieldname) == columnar_col.distinct(fieldname)
    query = {"age": {"$lte": 30}}
    assert dict_col.distinct("city", query) == columnar_col.distinct("city", query)


def test_typed_collection_sorted_index_agrees():
    docs = [
        {
            "install_id": f"i{i % 3}",
            "participant_id": str(100 + i),
            "android_id": None if i % 4 == 0 else f"a{i}",
            "registered_at": float(i),
        }
        for i in range(12)
    ]
    dict_col = DocumentStore(backend="dict").collection("installs")
    columnar_col = DocumentStore(backend="columnar").collection("installs")
    for collection in (dict_col, columnar_col):
        collection.create_index("install_id")
        collection.insert_many([dict(d) for d in docs])
    assert isinstance(columnar_col, ColumnarCollection)
    assert columnar_col.frame.schema is not None  # typed via SCHEMA_BY_COLLECTION
    for query in [
        {"install_id": "i1"},  # sorted-index probe, duplicates in insert order
        {"install_id": "zzz"},
        {"install_id": 42},  # type-mismatched operand: no matches, no error
        {"registered_at": {"$gte": 3.0, "$lt": 9.0}},
        {"android_id": {"$exists": True}},
        {"android_id": None},
    ]:
        assert dict_col.find(query) == columnar_col.find(query)


def test_columnar_degrades_to_generic_on_schema_mismatch():
    columnar_col = DocumentStore(backend="columnar").collection("installs")
    columnar_col.create_index("install_id")
    conforming = {
        "install_id": "i0",
        "participant_id": "100",
        "android_id": "a0",
        "registered_at": 0.0,
    }
    columnar_col.insert(dict(conforming))
    columnar_col.insert({"install_id": "i1", "weird": True})  # degrade
    assert columnar_col.frame.schema is None
    assert columnar_col.find({"install_id": "i0"}) == [conforming]
    assert columnar_col.find({"weird": {"$exists": True}}) == [
        {"install_id": "i1", "weird": True}
    ]
    assert columnar_col.count() == 2


def test_find_views_are_live_mappings():
    collection = DocumentStore(backend="columnar").collection("people")
    collection.insert_many([dict(d) for d in DOCS])
    views = collection.find_views({"city": "lima"})
    assert [dict(v) for v in views] == collection.find({"city": "lima"})


def test_backend_knob_and_env(monkeypatch):
    assert isinstance(DocumentStore(backend="dict")["c"], Collection)
    assert isinstance(DocumentStore(backend="columnar")["c"], ColumnarCollection)
    with pytest.raises(ValueError, match="unknown store backend"):
        DocumentStore(backend="sqlite")
    monkeypatch.setenv("REPRO_STORE_BACKEND", "dict")
    assert isinstance(DocumentStore()["c"], Collection)
    monkeypatch.delenv("REPRO_STORE_BACKEND")
    assert isinstance(DocumentStore()["c"], ColumnarCollection)
