"""Fault-injecting RacketStore server.

Wraps :class:`~repro.platform.server.RacketStoreServer` with the
server-side sites of a :class:`~repro.faults.plan.FaultPlan`:

* **overload** — the receive raises :class:`InjectedThrottle` (429 +
  Retry-After) before touching the chunk;
* **store_reject** — the store refuses the write; the base server's
  atomic commit rolls back and the error propagates un-acked;
* **receive_crash** — the server dies *mid-chunk*: a seeded prefix of
  the chunk's records is inserted before :class:`ServerCrash` fires,
  which is exactly the partial state the rollback must erase.

An injected fault means no acknowledgement was produced, so the sender
retransmits; the base server's dedup window plus atomic commit turn
at-least-once delivery into exactly-once ingest.  Chunks that fail
during phase-2 commit park on a redelivery queue retried at the start
of each following day and drained (injection off) at study close.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..obs.metrics import MetricsRegistry
from ..platform.server import _COLLECTIONS, RacketStoreServer
from ..platform.store import DocumentStore
from .errors import FaultInjected, InjectedThrottle, ServerCrash, StoreRejected
from .plan import FaultPlan

__all__ = ["FaultableServer"]


class FaultableServer(RacketStoreServer):
    """RacketStoreServer with seeded server-side fault injection."""

    def __init__(
        self,
        store: DocumentStore | None = None,
        review_crawler=None,
        registry: MetricsRegistry | None = None,
        *,
        plan: FaultPlan,
        rng: np.random.Generator,
    ) -> None:
        if rng is None:
            raise ValueError("FaultableServer requires an explicit rng")
        super().__init__(
            store, review_crawler, registry, dedup_window=plan.dedup_window
        )
        self._plan = plan
        self._frng = rng
        self._day = 0
        self._injecting = True
        self._crash_armed = False
        self._redelivery: list[tuple[str, bytes]] = []
        self.fault_counts = {"overload": 0, "store_reject": 0, "receive_crash": 0}
        self.redelivered_chunks = 0

    def set_day(self, day: int) -> None:
        self._day = int(day)

    def heal(self) -> None:
        """Stop injecting; subsequent receives behave like the base
        server (study-close drain)."""
        self._injecting = False

    # -- fault-injecting receive ---------------------------------------
    def receive_chunk(self, kind: str, data: bytes) -> str:
        if self._injecting:
            plan, rng, day = self._plan, self._frng, self._day
            if plan.overload.fires(rng, day):
                self.fault_counts["overload"] += 1
                obs.counter("faults_injected_total", {"site": "overload"}).inc()
                raise InjectedThrottle(plan.overload_retry_after_s)
            if plan.store_reject.fires(rng, day):
                self.fault_counts["store_reject"] += 1
                obs.counter("faults_injected_total", {"site": "store_reject"}).inc()
                raise StoreRejected("injected store write rejection")
            if plan.receive_crash.fires(rng, day):
                self.fault_counts["receive_crash"] += 1
                obs.counter(
                    "faults_injected_total", {"site": "receive_crash"}
                ).inc()
                # Arm the mid-insert crash; the actual crash point is
                # drawn in _insert_batches once the record count is
                # known.  The base receive rolls the partial insert
                # back and re-raises without acking.
                self._crash_armed = True
        try:
            return super().receive_chunk(kind, data)
        finally:
            self._crash_armed = False

    def _insert_batches(self, records: list[tuple[str, dict]]) -> int:
        if not self._crash_armed or not records:
            return super()._insert_batches(records)
        # Crash mid-chunk: insert a seeded prefix of the records the way
        # the real batching would, then die before completing.
        prefix = int(self._frng.integers(0, len(records)))
        for type_name, payload in records[:prefix]:
            self.store[_COLLECTIONS[type_name]].insert(payload)
        raise ServerCrash(
            f"injected crash after {prefix}/{len(records)} records"
        )

    # -- phase-2 redelivery queue --------------------------------------
    @property
    def redelivery_backlog(self) -> int:
        return len(self._redelivery)

    def queue_redelivery(self, kind: str, data: bytes) -> None:
        """Park a chunk whose commit-time receive failed; redelivered
        at the start of the next day."""
        self._redelivery.append((kind, data))
        obs.counter("server_redelivery_queued_total").inc()

    def redeliver_pending(self) -> int:
        """Retry every parked chunk once, in arrival order; failures
        re-park.  Returns the number delivered."""
        queued, self._redelivery = self._redelivery, []
        delivered = 0
        for kind, data in queued:
            try:
                self.receive_chunk(kind, data)
            except FaultInjected:
                self._redelivery.append((kind, data))
            else:
                delivered += 1
                self.redelivered_chunks += 1
        return delivered

    def drain_redelivery(self) -> int:
        """Deliver everything still parked with injection off (study
        close: faults move deliveries, they never erase them)."""
        self.heal()
        return self.redeliver_pending()
