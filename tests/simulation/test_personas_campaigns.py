"""Tests for persona distributions and the ASO campaign board."""

import numpy as np
import pytest

from repro.playstore.catalog import Catalog
from repro.simulation.campaigns import CampaignBoard
from repro.simulation.personas import dedicated_worker, organic_worker, regular_user
from repro.simulation.recruitment import simulate_funnel


class TestPersonas:
    def test_worker_flags(self):
        assert not regular_user().is_worker
        assert organic_worker().is_worker
        assert dedicated_worker().is_worker

    def test_gmail_counts_ordered_by_persona(self, rng):
        def mean_gmail(persona):
            return np.mean([persona.sample_gmail_accounts(rng) for _ in range(300)])

        regular = mean_gmail(regular_user())
        organic = mean_gmail(organic_worker())
        dedicated = mean_gmail(dedicated_worker())
        assert regular < organic < dedicated

    def test_regular_gmail_capped_at_10(self, rng):
        persona = regular_user()
        assert max(persona.sample_gmail_accounts(rng) for _ in range(500)) <= 10

    def test_worker_gmail_cap_matches_paper_max(self, rng):
        assert dedicated_worker().gmail_max == 163

    def test_review_delays_shorter_for_workers(self, rng):
        worker = organic_worker()
        regular = regular_user()
        worker_delays = [worker.sample_review_delay_days(rng) for _ in range(500)]
        regular_delays = [regular.sample_review_delay_days(rng) for _ in range(500)]
        assert np.median(worker_delays) < np.median(regular_delays)

    def test_worker_fast_review_fraction(self, rng):
        delays = [organic_worker().sample_review_delay_days(rng) for _ in range(2000)]
        fast = np.mean(np.array(delays) <= 1.0)
        assert 0.2 <= fast <= 0.45  # paper: 33% within one day

    def test_dedicated_stop_many_apps(self, rng):
        stops = [dedicated_worker().sample_stopped_apps(rng) for _ in range(300)]
        assert np.median(stops) >= 10

    def test_regular_user_never_promotes(self, rng):
        persona = regular_user()
        assert persona.sample_promo_installs(rng) == 0
        assert persona.initial_promo_fraction == 0.0

    def test_organic_intensity_scales_workload(self):
        low = organic_worker(intensity=0.1)
        high = organic_worker(intensity=2.0)
        assert low.campaigns_per_day_mean < high.campaigns_per_day_mean
        assert low.gmail_log_median < high.gmail_log_median
        assert low.initial_promo_fraction < high.initial_promo_fraction

    def test_samples_non_negative(self, rng):
        for persona in (regular_user(), organic_worker(0.3), dedicated_worker()):
            for _ in range(50):
                assert persona.sample_daily_installs(rng) >= 0
                assert persona.sample_stopped_apps(rng) >= 0
                assert persona.sample_review_delay_days(rng) > 0
                assert persona.sample_sessions(rng) >= 0


class TestCampaignBoard:
    @pytest.fixture()
    def board_with_apps(self, rng):
        catalog = Catalog(rng)
        board = CampaignBoard(rng)
        apps = [catalog.add_promoted_app() for _ in range(5)]
        for app in apps:
            board.post_campaign(app, target_installs=10, target_reviews=6)
        return board, apps

    def test_advertised_packages(self, board_with_apps):
        board, apps = board_with_apps
        assert board.advertised_packages() == {a.package for a in apps}

    def test_job_decrements_remaining(self, board_with_apps):
        board, _ = board_with_apps
        job = board.next_job()
        campaign = board.get(job.campaign_id)
        assert campaign.delivered_installs == 1
        assert job.wants_review

    def test_jobs_exhaust_eventually(self, board_with_apps):
        board, _ = board_with_apps
        jobs = 0
        while board.next_job() is not None:
            jobs += 1
            assert jobs <= 50
        assert jobs == 50  # 5 campaigns x 10 installs

    def test_exclusion_respected(self, board_with_apps):
        board, apps = board_with_apps
        exclude = {a.package for a in apps[:4]}
        job = board.next_job(exclude_packages=exclude)
        assert job.app_package == apps[4].package

    def test_reviews_capped_at_target(self, board_with_apps):
        board, _ = board_with_apps
        review_jobs = 0
        while (job := board.next_job()) is not None:
            review_jobs += job.wants_review
        assert review_jobs == 30  # 5 campaigns x 6 reviews

    def test_payout_accounting(self, rng):
        catalog = Catalog(rng)
        board = CampaignBoard(rng)
        campaign = board.post_campaign(
            catalog.add_promoted_app(), target_installs=2, target_reviews=1
        )
        board.next_job()
        board.next_job()
        expected = 2 * campaign.pay_per_install_usd + 1 * campaign.pay_per_review_usd
        assert board.total_payout_usd() == pytest.approx(expected)

    def test_campaign_complete_flag(self, rng):
        catalog = Catalog(rng)
        board = CampaignBoard(rng)
        campaign = board.post_campaign(
            catalog.add_promoted_app(), target_installs=1, target_reviews=1
        )
        assert not campaign.complete
        board.next_job()
        assert campaign.complete


class TestRecruitmentFunnel:
    def test_monotone_stages(self, rng):
        funnel = simulate_funnel(rng)
        counts = [stage.count for stage in funnel.stages]
        assert counts == sorted(counts, reverse=True)

    def test_paper_scale_counts(self, rng):
        funnel = simulate_funnel(rng)
        assert funnel.count("reached") == pytest.approx(61_748, rel=0.1)
        assert funnel.count("installed") == pytest.approx(233, rel=0.35)

    def test_conversion_rates(self, rng):
        funnel = simulate_funnel(rng)
        assert funnel.conversion("impressions", "installed") < 0.01

    def test_unknown_stage_raises(self, rng):
        with pytest.raises(KeyError):
            simulate_funnel(rng).count("retention")


class TestCountrySampling:
    def test_known_countries_only(self, rng):
        from repro.simulation.recruitment import sample_country

        seen = {sample_country(rng, True) for _ in range(300)}
        assert seen <= {"PK", "IN", "BD", "US", "OTHER"}

    def test_cohort_skews_match_paper(self, rng):
        from repro.simulation.recruitment import sample_country

        workers = [sample_country(rng, True) for _ in range(800)]
        regulars = [sample_country(rng, False) for _ in range(800)]
        # Paper: workers mostly Pakistan, regulars mostly India.
        assert workers.count("PK") > workers.count("IN")
        assert regulars.count("IN") > regulars.count("PK")
