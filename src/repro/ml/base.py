"""Base classes and validation helpers for the from-scratch ML substrate.

The RacketStore paper evaluates five supervised algorithms (XGB, RF, LR,
KNN, LVQ for apps; XGB, RF, SVM, KNN, LVQ for devices).  This package
implements all of them against a minimal, scikit-learn-like estimator
protocol: ``fit(X, y)``, ``predict(X)`` and, for rankers,
``predict_proba(X)``.  Keeping the protocol tiny makes cross-validation,
sampling and the benchmark harness algorithm-agnostic.
"""

from __future__ import annotations

import copy
from typing import Any

import numpy as np

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "clone",
    "check_X_y",
    "check_array",
    "check_random_state",
]


def check_array(X: Any) -> np.ndarray:
    """Coerce ``X`` to a 2-D float64 array, rejecting NaN/inf values."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got ndim={X.ndim}")
    if X.shape[0] == 0:
        raise ValueError("empty feature matrix")
    if not np.isfinite(X).all():
        raise ValueError("feature matrix contains NaN or infinite values")
    return X


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and label vector of matching length."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"expected a 1-D label vector, got ndim={y.ndim}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} labels"
        )
    return X, y


def check_random_state(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise a seed or Generator into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def clone(estimator: "BaseEstimator") -> "BaseEstimator":
    """Return an unfitted deep copy of ``estimator`` (same hyper-parameters)."""
    params = estimator.get_params()
    return type(estimator)(**copy.deepcopy(params))


class BaseEstimator:
    """Minimal estimator base providing parameter introspection.

    Subclasses must store every constructor argument on ``self`` under the
    same name; ``get_params`` reads them back via the constructor signature,
    which is what makes :func:`clone` work.
    """

    def get_params(self) -> dict[str, Any]:
        import inspect

        signature = inspect.signature(type(self).__init__)
        params = {}
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            params[name] = getattr(self, name)
        return params

    def set_params(self, **params: Any) -> "BaseEstimator":
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(f"unknown parameter {name!r} for {type(self).__name__}")
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({args})"


class ClassifierMixin:
    """Shared behaviour for binary/multiclass classifiers.

    Provides label encoding (``classes_``) and a default ``predict`` that
    argmaxes ``predict_proba`` when the subclass supplies probabilities.
    """

    classes_: np.ndarray

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Map arbitrary labels to 0..K-1, recording ``classes_``."""
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded

    def _decode_labels(self, indices: np.ndarray) -> np.ndarray:
        return self.classes_[indices]

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)  # type: ignore[attr-defined]
        return self._decode_labels(np.argmax(proba, axis=1))

    def score(self, X: Any, y: Any) -> float:
        """Mean accuracy on the given test data."""
        X, y = check_X_y(X, y)
        return float(np.mean(self.predict(X) == y))
