"""Tests for Platt and isotonic probability calibration."""

import numpy as np
import pytest

from repro.ml.calibration import CalibratedClassifier, IsotonicCalibrator, PlattCalibrator
from repro.ml.logistic import LogisticRegression
from repro.ml.svm import LinearSVC


@pytest.fixture()
def scored(rng):
    """Scores correlated with labels but miscalibrated (overconfident)."""
    n = 600
    y = rng.integers(0, 2, n)
    scores = 4.0 * (y - 0.5) + rng.normal(0, 1.5, n)
    return scores, y


class TestPlatt:
    def test_probabilities_in_unit_interval(self, scored):
        scores, y = scored
        calibrator = PlattCalibrator().fit(scores, y)
        p = calibrator.predict_proba(scores)
        assert (p >= 0).all() and (p <= 1).all()

    def test_monotone_in_score(self, scored):
        scores, y = scored
        calibrator = PlattCalibrator().fit(scores, y)
        ordered = calibrator.predict_proba(np.linspace(-5, 5, 50))
        assert np.all(np.diff(ordered) >= 0)

    def test_calibration_improves_binned_accuracy(self, scored):
        scores, y = scored
        calibrator = PlattCalibrator().fit(scores, y)
        p = calibrator.predict_proba(scores)
        # Expected calibration error over 5 bins should be small.
        bins = np.quantile(p, np.linspace(0, 1, 6))
        errors = []
        for lo, hi in zip(bins, bins[1:]):
            mask = (p >= lo) & (p <= hi)
            if mask.sum() > 10:
                errors.append(abs(p[mask].mean() - y[mask].mean()))
        assert max(errors) < 0.1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PlattCalibrator().fit([1.0, 2.0], [1])


class TestIsotonic:
    def test_fit_is_monotone(self, scored):
        scores, y = scored
        calibrator = IsotonicCalibrator().fit(scores, y)
        grid = calibrator.predict_proba(np.linspace(scores.min(), scores.max(), 200))
        assert np.all(np.diff(grid) >= -1e-12)

    def test_pava_on_known_sequence(self):
        # Classic PAVA example: decreasing pair gets pooled.
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([0.0, 1.0, 0.0, 1.0])
        calibrator = IsotonicCalibrator().fit(scores, y)
        p = calibrator.predict_proba(scores)
        assert np.all(np.diff(p) >= -1e-12)
        # The violating middle pair pools to 0.5.
        assert p[1] == pytest.approx(0.5)
        assert p[2] == pytest.approx(0.5)

    def test_probabilities_clamped(self, scored):
        scores, y = scored
        calibrator = IsotonicCalibrator().fit(scores, y)
        extreme = calibrator.predict_proba(np.array([-100.0, 100.0]))
        assert 0.0 <= extreme[0] <= extreme[1] <= 1.0

    def test_perfectly_separable(self):
        scores = np.array([-2.0, -1.0, 1.0, 2.0])
        y = np.array([0, 0, 1, 1])
        p = IsotonicCalibrator().fit(scores, y).predict_proba(scores)
        assert p[0] == pytest.approx(0.0)
        assert p[-1] == pytest.approx(1.0)


class TestCalibratedClassifier:
    def test_wraps_svm_margins(self, blobs):
        X, y = blobs
        base = LinearSVC(random_state=0).fit(X, y)
        calibrated = CalibratedClassifier(base, method="isotonic").fit(X, y)
        proba = calibrated.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert np.mean(calibrated.predict(X) == y) >= 0.9

    def test_platt_wrapping(self, blobs):
        X, y = blobs
        base = LogisticRegression().fit(X, y)
        calibrated = CalibratedClassifier(base, method="platt").fit(X, y)
        assert np.mean(calibrated.predict(X) == y) >= 0.9

    def test_unknown_method_rejected(self, blobs):
        with pytest.raises(ValueError):
            CalibratedClassifier(LogisticRegression(), method="beta")
