"""Bench: Figure 1 per-app interaction timelines."""

from repro.analysis import app_timeline
from repro.experiments import run_experiment


def test_fig01_timelines(benchmark, workbench, emit):
    obs = next(o for o in workbench.observations if o.is_worker and o.device_reviews)
    package = next(iter(obs.device_reviews))
    benchmark(app_timeline, obs, package)
    report = emit(run_experiment("fig01", workbench))
    assert report.metrics["worker_timelines"] == 2
    assert report.metrics["regular_timelines"] == 1
