"""Aggregate-rating maintenance: how posted reviews move the star value.

§2: "a 1-star increase in aggregate rating was shown to increase app
store conversion by up to 280%" — the whole point of fake 5-star
reviews.  The aggregator recomputes each app's displayed rating as the
weighted blend of its pre-existing rating mass (the listing's
``review_count`` at catalog creation stands in for historical ratings)
and the live reviews in the store, then writes it back to the catalog
so the search-rank model sees the promotion effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from .catalog import Catalog
from .reviews import ReviewStore

__all__ = ["RatingUpdate", "RatingAggregator"]


@dataclass(frozen=True)
class RatingUpdate:
    """One app's rating change after an aggregation pass."""

    package: str
    before: float
    after: float
    live_reviews: int

    @property
    def delta(self) -> float:
        return self.after - self.before


class RatingAggregator:
    """Recomputes displayed ratings from live reviews.

    The pre-existing rating is treated as ``baseline_weight`` pseudo-
    reviews at the listing's original aggregate value, so a 50-review
    campaign visibly moves an obscure app's stars but barely dents a
    popular app's — matching how Play's aggregate behaves.
    """

    def __init__(self, catalog: Catalog, store: ReviewStore) -> None:
        self._catalog = catalog
        self._store = store
        self._baseline: dict[str, tuple[float, int]] = {}

    def _baseline_for(self, package: str) -> tuple[float, int]:
        if package not in self._baseline:
            app = self._catalog.get(package)
            # Historical mass: the listing's review count at first sight,
            # floored so brand-new apps still have a mild prior.
            self._baseline[package] = (
                app.aggregate_rating if app.aggregate_rating > 0 else 3.0,
                max(app.review_count, 5),
            )
        return self._baseline[package]

    def recompute(self, package: str) -> RatingUpdate:
        """Recompute one app's displayed rating; updates the catalog."""
        app = self._catalog.get(package)
        base_rating, base_weight = self._baseline_for(package)
        reviews = self._store.reviews_for_app(package)
        live_sum = sum(r.rating for r in reviews)
        total_weight = base_weight + len(reviews)
        after = (base_rating * base_weight + live_sum) / total_weight
        updated = app.with_counts(
            app.install_count,
            base_weight + len(reviews),
            round(after, 4),
        )
        self._catalog.update(updated)
        return RatingUpdate(
            package=package,
            before=app.aggregate_rating,
            after=updated.aggregate_rating,
            live_reviews=len(reviews),
        )

    def recompute_all(self, packages=None) -> list[RatingUpdate]:
        """Aggregation pass over the given (default: all reviewed) apps."""
        if packages is None:
            packages = sorted(
                p for p in self._catalog.packages()
                if self._store.review_count(p) > 0
            )
        return [self.recompute(p) for p in packages if p in self._catalog]

    def biggest_movers(self, k: int = 10) -> list[RatingUpdate]:
        """Apps whose displayed rating moved the most (promotion flags)."""
        updates = self.recompute_all()
        return sorted(updates, key=lambda u: -abs(u.delta))[:k]
