"""Operating-point selection for deployed detectors.

§8.2: "We prioritize precision, since a low precision would lead the app
market to take wrong actions against many regular devices."  A deployed
store doesn't use the default 0.5 cut — it picks a score threshold for a
target false-positive rate (or precision) on validation data.  This
module computes precision/recall/FPR sweeps and selects thresholds under
those constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "OperatingPoint",
    "precision_recall_curve",
    "threshold_for_fpr",
    "threshold_for_precision",
    "sweep_operating_points",
]


@dataclass(frozen=True)
class OperatingPoint:
    """One threshold with the metrics it achieves on validation data."""

    threshold: float
    precision: float
    recall: float
    false_positive_rate: float
    flagged_fraction: float


def _validate(y_true, scores) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    if y_true.size == 0:
        raise ValueError("empty inputs")
    return y_true, scores


def precision_recall_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(precision, recall, thresholds) over descending score cuts."""
    y_true, scores = _validate(y_true, scores)
    order = np.argsort(-scores, kind="mergesort")
    truth = (y_true[order] == 1).astype(np.float64)
    tp = np.cumsum(truth)
    predicted = np.arange(1, truth.size + 1)
    precision = tp / predicted
    total_pos = truth.sum()
    recall = tp / total_pos if total_pos else np.zeros_like(tp)
    return precision, recall, scores[order]


def _point_at(y_true: np.ndarray, scores: np.ndarray, threshold: float) -> OperatingPoint:
    flagged = scores >= threshold
    positive = y_true == 1
    tp = int(np.sum(flagged & positive))
    fp = int(np.sum(flagged & ~positive))
    fn = int(np.sum(~flagged & positive))
    tn = int(np.sum(~flagged & ~positive))
    return OperatingPoint(
        threshold=float(threshold),
        precision=tp / (tp + fp) if tp + fp else 1.0,
        recall=tp / (tp + fn) if tp + fn else 0.0,
        false_positive_rate=fp / (fp + tn) if fp + tn else 0.0,
        flagged_fraction=float(np.mean(flagged)),
    )


def _all_points(y_true: np.ndarray, scores: np.ndarray) -> list[OperatingPoint]:
    """Operating points at every distinct threshold, via cumulative sums
    over the descending-score order (O(n log n))."""
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    positive = (y_true[order] == 1).astype(np.int64)
    tp = np.cumsum(positive)
    fp = np.cumsum(1 - positive)
    total_pos = int(positive.sum())
    total_neg = positive.size - total_pos

    # Threshold at each *last* index of a distinct score value.
    distinct_last = np.nonzero(
        np.r_[sorted_scores[1:] != sorted_scores[:-1], True]
    )[0]
    points = []
    for index in distinct_last:
        tp_i, fp_i = int(tp[index]), int(fp[index])
        flagged = index + 1
        points.append(
            OperatingPoint(
                threshold=float(sorted_scores[index]),
                precision=tp_i / flagged if flagged else 1.0,
                recall=tp_i / total_pos if total_pos else 0.0,
                false_positive_rate=fp_i / total_neg if total_neg else 0.0,
                flagged_fraction=flagged / positive.size,
            )
        )
    return points


def _flag_nothing(y_true: np.ndarray, scores: np.ndarray) -> OperatingPoint:
    return _point_at(y_true, scores, float(scores.max()) + 1.0)


def threshold_for_fpr(y_true, scores, max_fpr: float) -> OperatingPoint:
    """The maximum-recall operating point whose FPR stays within
    ``max_fpr``; falls back to flag-nothing if no point qualifies."""
    y_true, scores = _validate(y_true, scores)
    feasible = [
        p for p in _all_points(y_true, scores) if p.false_positive_rate <= max_fpr
    ]
    if not feasible:
        return _flag_nothing(y_true, scores)
    return max(feasible, key=lambda p: (p.recall, -p.threshold))


def threshold_for_precision(y_true, scores, min_precision: float) -> OperatingPoint:
    """The maximum-recall operating point keeping precision >=
    ``min_precision`` (the §8.2 precision-first deployment policy)."""
    y_true, scores = _validate(y_true, scores)
    feasible = [
        p for p in _all_points(y_true, scores) if p.precision >= min_precision
    ]
    if not feasible:
        return _flag_nothing(y_true, scores)
    return max(feasible, key=lambda p: (p.recall, p.precision))


def sweep_operating_points(y_true, scores, n_points: int = 11) -> list[OperatingPoint]:
    """Evenly spaced threshold sweep (for operating-point tables)."""
    y_true, scores = _validate(y_true, scores)
    thresholds = np.linspace(scores.min(), scores.max(), n_points)
    return [_point_at(y_true, scores, float(t)) for t in thresholds]
