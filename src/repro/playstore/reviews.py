"""Play Store review store and the RacketStore review crawler.

§5 of the paper: the review crawler queries Google Play every 12 hours
for each app seen on a participant device, sorted by timestamp; the
first crawl collects up to 100,000 reviews, subsequent crawls collect
the most recent reviews until hitting one already collected.  Each
review carries the poster's Google ID, a 1-second-granularity timestamp
and a star rating.
"""

from __future__ import annotations

import itertools
from bisect import insort
from dataclasses import dataclass, field

from .. import obs

__all__ = ["Review", "ReviewStore", "ReviewCrawler", "CrawlStats"]


@dataclass(frozen=True, order=True)
class Review:
    """One Play Store review.  Ordering is (timestamp, review_id) so the
    store can keep per-app lists sorted by posting time."""

    timestamp: float
    review_id: int
    app_package: str = field(compare=False)
    google_id: str = field(compare=False)
    rating: int = field(compare=False)

    def __post_init__(self) -> None:
        if not 1 <= self.rating <= 5:
            raise ValueError(f"rating must be 1..5, got {self.rating}")


class ReviewStore:
    """The Play Store's review database (one list per app, time-sorted).

    A Google account can post at most one *live* review per app — the
    paper relies on this ("For one app, a single review can be posted
    from any Gmail account"), which is exactly why workers register many
    Gmail accounts.  Posting again from the same account replaces the
    previous review.
    """

    def __init__(self) -> None:
        self._by_app: dict[str, list[Review]] = {}
        self._by_google_id: dict[str, dict[str, Review]] = {}
        self._id_counter = itertools.count(1)

    def post_review(
        self, app_package: str, google_id: str, rating: int, timestamp: float
    ) -> Review:
        """Post (or replace) the review for (app, account)."""
        previous = self._by_google_id.get(google_id, {}).get(app_package)
        if previous is not None:
            self._by_app[app_package].remove(previous)
        review = Review(
            timestamp=float(timestamp),
            review_id=next(self._id_counter),
            app_package=app_package,
            google_id=google_id,
            rating=int(rating),
        )
        insort(self._by_app.setdefault(app_package, []), review)
        self._by_google_id.setdefault(google_id, {})[app_package] = review
        return review

    def delete_review(self, app_package: str, google_id: str) -> bool:
        review = self._by_google_id.get(google_id, {}).pop(app_package, None)
        if review is None:
            return False
        self._by_app[app_package].remove(review)
        return True

    # -- queries -----------------------------------------------------------
    def reviews_for_app(self, app_package: str) -> list[Review]:
        """All live reviews for an app, oldest first."""
        return list(self._by_app.get(app_package, []))

    def recent_reviews(self, app_package: str, limit: int) -> list[Review]:
        """The ``limit`` most recent reviews, newest first — this is the
        'sorted by timestamp' crawl the paper's crawler issues."""
        reviews = self._by_app.get(app_package, [])
        return list(reversed(reviews[-limit:])) if limit > 0 else []

    def reviews_by_google_id(self, google_id: str) -> list[Review]:
        """Every live review posted by one Google account."""
        return sorted(self._by_google_id.get(google_id, {}).values())

    def review_count(self, app_package: str) -> int:
        return len(self._by_app.get(app_package, []))

    def total_reviews(self) -> int:
        return sum(len(v) for v in self._by_app.values())

    def apps_reviewed_by(self, google_id: str) -> set[str]:
        return set(self._by_google_id.get(google_id, {}))

    def has_reviewed(self, google_id: str, app_package: str) -> bool:
        return app_package in self._by_google_id.get(google_id, {})


@dataclass
class CrawlStats:
    """Bookkeeping the crawler exposes for the §5 dataset summary."""

    apps_crawled: int = 0
    crawl_rounds: int = 0
    reviews_collected: int = 0
    reviews_truncated_first_crawl: int = 0


class ReviewCrawler:
    """Incremental review collector with the paper's crawl semantics.

    * first crawl of an app: newest-first until ``first_crawl_cap``
      (100,000 in the paper);
    * later crawls: newest-first until a previously collected review id
      is hit;
    * a crawl round covers every tracked app (the paper ran one round
      every 12 hours).
    """

    def __init__(self, store: ReviewStore, first_crawl_cap: int = 100_000) -> None:
        self._store = store
        self.first_crawl_cap = first_crawl_cap
        self._seen: dict[str, set[int]] = {}
        self._collected: dict[str, list[Review]] = {}
        self._tracked: set[str] = set()
        self.stats = CrawlStats()

    def track_app(self, app_package: str) -> None:
        """Register an app discovered on a participant device."""
        if app_package not in self._tracked:
            self._tracked.add(app_package)
            self.stats.apps_crawled += 1
            obs.counter("crawl_apps_tracked_total").inc()

    def tracked_apps(self) -> set[str]:
        return set(self._tracked)

    def crawl_app(self, app_package: str) -> list[Review]:
        """Crawl one app; returns newly collected reviews (newest first)."""
        seen = self._seen.setdefault(app_package, set())
        first_crawl = not seen
        new: list[Review] = []
        # Page through newest-first; the store gives us the full ordered
        # list, we walk it from the newest end like the paginated API.
        all_reviews = self._store.reviews_for_app(app_package)
        for review in reversed(all_reviews):
            if review.review_id in seen:
                if not first_crawl:
                    break
                continue
            if first_crawl and len(new) >= self.first_crawl_cap:
                self.stats.reviews_truncated_first_crawl += 1
                break
            new.append(review)
            seen.add(review.review_id)
        self._collected.setdefault(app_package, []).extend(reversed(new))
        self._collected[app_package].sort()
        self.stats.reviews_collected += len(new)
        return new

    def crawl_round(self) -> int:
        """One 12-hour crawl cycle over every tracked app."""
        total = 0
        with obs.trace("crawl.round"):
            for app_package in sorted(self._tracked):
                total += len(self.crawl_app(app_package))
        self.stats.crawl_rounds += 1
        obs.counter("crawl_rounds_total").inc()
        obs.counter("crawl_reviews_collected_total").inc(total)
        obs.get_logger("crawl").debug(
            "crawl_round", apps=len(self._tracked), reviews=total
        )
        return total

    def collected(self, app_package: str) -> list[Review]:
        """Reviews collected so far for an app, oldest first."""
        return list(self._collected.get(app_package, []))

    def collected_total(self) -> int:
        return sum(len(v) for v in self._collected.values())
