"""Descriptive statistics in the shape the paper reports them.

Nearly every §6 measurement is summarised as "mean = x (M = median,
SD = s, max = m)"; :class:`Summary` captures that quadruple plus a few
extras so analyses and benchmarks can print paper-style rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "ecdf", "histogram_counts"]


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary matching the paper's reporting format."""

    n: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    q1: float
    q3: float
    total: float

    def paper_style(self) -> str:
        """Render like the paper: 'mean (M = median, SD = std, max = max)'."""
        return (
            f"{self.mean:.2f} (M = {self.median:.2f}, "
            f"SD = {self.std:.2f}, max = {self.maximum:.2f})"
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "median": self.median,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "q1": self.q1,
            "q3": self.q3,
            "total": self.total,
        }


def summarize(values) -> Summary:
    """Compute a :class:`Summary`, dropping non-finite entries."""
    arr = np.asarray(list(values), dtype=np.float64).ravel()
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return Summary(0, float("nan"), float("nan"), float("nan"),
                       float("nan"), float("nan"), float("nan"), float("nan"), 0.0)
    # Pairwise summation can land the mean one ULP outside [min, max]
    # (e.g. three copies of the same value); clamp so the invariant
    # min <= mean <= max holds exactly.
    mean = float(min(max(arr.mean(), arr.min()), arr.max()))
    return Summary(
        n=int(arr.size),
        mean=mean,
        median=float(np.median(arr)),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        q1=float(np.percentile(arr, 25)),
        q3=float(np.percentile(arr, 75)),
        total=float(arr.sum()),
    )


def ecdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative probabilities)."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64).ravel())
    if arr.size == 0:
        return arr, arr
    return arr, np.arange(1, arr.size + 1) / arr.size


def histogram_counts(values, bin_edges) -> np.ndarray:
    """Histogram counts over explicit bin edges (right-inclusive last bin)."""
    arr = np.asarray(list(values), dtype=np.float64).ravel()
    counts, _ = np.histogram(arr, bins=np.asarray(bin_edges, dtype=np.float64))
    return counts
