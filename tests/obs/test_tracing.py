"""Span nesting, aggregation, and report rendering."""

from repro.obs.tracing import NullTracer, Tracer


class TestSpanAggregation:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
            with tracer.trace("inner"):
                pass
        outer = tracer.root.children["outer"]
        assert outer.calls == 1
        inner = outer.children["inner"]
        assert inner.calls == 2
        assert outer.total_seconds >= inner.total_seconds

    def test_same_name_under_different_parents_stays_separate(self):
        tracer = Tracer()
        with tracer.trace("a"):
            with tracer.trace("work"):
                pass
        with tracer.trace("b"):
            with tracer.trace("work"):
                pass
        assert "work" in tracer.root.children["a"].children
        assert "work" in tracer.root.children["b"].children
        paths = [path for path, _ in tracer.spans()]
        assert "a/work" in paths and "b/work" in paths

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.trace("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.root.children["boom"].calls == 1
        # The stack unwound: a new top-level span is a root child.
        with tracer.trace("after"):
            pass
        assert "after" in tracer.root.children

    def test_self_seconds_excludes_children(self):
        tracer = Tracer()
        with tracer.trace("parent"):
            with tracer.trace("child"):
                pass
        parent = tracer.root.children["parent"]
        assert parent.self_seconds <= parent.total_seconds

    def test_find_and_top_slowest(self):
        tracer = Tracer()
        with tracer.trace("simulate"):
            with tracer.trace("ingest.chunk"):
                pass
        assert tracer.find("ingest.chunk") is not None
        assert tracer.find("nope") is None
        slowest = tracer.top_slowest(1)
        assert len(slowest) == 1

    def test_reset(self):
        tracer = Tracer()
        with tracer.trace("x"):
            pass
        tracer.reset()
        assert tracer.root.children == {}


class TestRendering:
    def test_render_contains_names_and_counts(self):
        tracer = Tracer()
        with tracer.trace("simulate"):
            for _ in range(3):
                with tracer.trace("day"):
                    pass
        text = tracer.render()
        assert "simulate" in text
        assert "  day" in text  # indented child
        lines = [l for l in text.splitlines() if "day" in l]
        assert "3" in lines[0].split()

    def test_render_slowest(self):
        tracer = Tracer()
        with tracer.trace("a"):
            with tracer.trace("b"):
                pass
        text = tracer.render_slowest(5)
        assert "a/b" in text

    def test_to_json(self):
        tracer = Tracer()
        with tracer.trace("a"):
            with tracer.trace("b"):
                pass
        doc = tracer.to_json()
        assert doc["spans"][0]["name"] == "a"
        assert doc["spans"][0]["children"][0]["name"] == "b"
        assert doc["spans"][0]["calls"] == 1


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.trace("x"):
            with tracer.trace("y"):
                pass
        assert tracer.root.children == {}
        assert tracer.render_slowest(3).count("\n") == 0
