"""Findings registry: every qualitative claim of §6-§8, checked.

Each paper finding is encoded as a predicate over the shared workbench;
:func:`check_findings` evaluates all of them and reports which hold on
the simulated reproduction.  This is the machine-readable version of
the paper's "Summary of Findings" paragraphs, and the source for the
scorecard in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..analysis import (
    compute_accounts,
    compute_churn,
    compute_daily_use,
    compute_install_to_review,
    compute_installed_apps,
    compute_malware,
    compute_stopped_apps,
)
from .common import Workbench

__all__ = ["Finding", "FindingResult", "FINDINGS", "check_findings"]


@dataclass(frozen=True)
class Finding:
    """One claim from the paper with its provenance."""

    finding_id: str
    section: str
    statement: str
    check: Callable[[Workbench], tuple[bool, str]]


@dataclass(frozen=True)
class FindingResult:
    finding: Finding
    holds: bool
    measured: str

    def row(self) -> tuple[str, str, str, str]:
        return (
            self.finding.finding_id,
            self.finding.section,
            "holds" if self.holds else "DIFFERS",
            self.measured,
        )


def _accounts_more_gmail(wb: Workbench) -> tuple[bool, str]:
    result = compute_accounts(wb.observations)
    ratio = result.gmail.worker.median / max(result.gmail.regular.median, 1e-9)
    return (
        ratio > 3 and result.gmail.significant(),
        f"worker/regular Gmail median ratio = {ratio:.1f}",
    )


def _accounts_less_diversity(wb: Workbench) -> tuple[bool, str]:
    result = compute_accounts(wb.observations)
    return (
        result.account_types.worker.mean < result.account_types.regular.mean,
        f"account types: worker {result.account_types.worker.mean:.1f} vs "
        f"regular {result.account_types.regular.mean:.1f}",
    )


def _installed_counts_similar(wb: Workbench) -> tuple[bool, str]:
    result = compute_installed_apps(wb.observations)
    ratio = result.installed.worker.mean / result.installed.regular.mean
    return 0.7 <= ratio <= 1.8, f"installed-apps mean ratio = {ratio:.2f}"


def _installed_anova_not_significant(wb: Workbench) -> tuple[bool, str]:
    result = compute_installed_apps(wb.observations)
    p = result.installed.tests.anova.pvalue
    return not result.installed.tests.anova.significant(), f"ANOVA p = {p:.3f}"


def _workers_review_more_installed(wb: Workbench) -> tuple[bool, str]:
    result = compute_installed_apps(wb.observations)
    worker = result.installed_and_reviewed.worker.mean
    regular = max(result.installed_and_reviewed.regular.mean, 1e-9)
    return worker / regular > 10, f"installed+reviewed: {worker:.1f} vs {regular:.2f}"


def _workers_total_reviews_dominant(wb: Workbench) -> tuple[bool, str]:
    result = compute_installed_apps(wb.observations)
    worker = result.total_reviews.worker.mean
    regular = max(result.total_reviews.regular.mean, 1e-9)
    return (
        worker / regular > 20 and result.total_reviews.significant(),
        f"total reviews/device: {worker:.0f} vs {regular:.2f}",
    )


def _workers_review_sooner(wb: Workbench) -> tuple[bool, str]:
    result = compute_install_to_review(wb.observations)
    return (
        result.comparison.worker.median < result.comparison.regular.median,
        f"median wait: worker {result.comparison.worker.median:.1f}d vs "
        f"regular {result.comparison.regular.median:.1f}d",
    )


def _worker_fast_review_mass(wb: Workbench) -> tuple[bool, str]:
    result = compute_install_to_review(wb.observations)
    return (
        0.15 <= result.worker_fast_fraction <= 0.6,
        f"worker reviews within 1 day: {result.worker_fast_fraction:.0%} (paper 33%)",
    )


def _workers_stop_more_apps(wb: Workbench) -> tuple[bool, str]:
    result = compute_stopped_apps(wb.observations)
    return (
        result.comparison.worker.median > result.comparison.regular.median
        and result.comparison.significant(),
        f"stopped median: worker {result.comparison.worker.median:.0f} vs "
        f"regular {result.comparison.regular.median:.0f}",
    )


def _worker_churn_higher(wb: Workbench) -> tuple[bool, str]:
    result = compute_churn(wb.observations)
    return (
        result.installs.worker.mean > 2 * result.installs.regular.mean
        and result.installs.significant(),
        f"daily installs: worker {result.installs.worker.mean:.1f} vs "
        f"regular {result.installs.regular.mean:.1f}",
    )


def _daily_use_overlaps(wb: Workbench) -> tuple[bool, str]:
    result = compute_daily_use(wb.observations)
    return (
        result.overlap_fraction() >= 0.15,
        f"worker devices inside regular IQR: {result.overlap_fraction():.0%}",
    )


def _malware_spreads_on_worker_devices(wb: Workbench) -> tuple[bool, str]:
    result = compute_malware(wb.observations, wb.data.vt_client, wb.data.catalog)
    spread = result.mean_spread()
    return (
        spread["worker"] >= spread["regular"],
        f"high-confidence sample spread: worker {spread['worker']:.2f} vs "
        f"regular {spread['regular']:.2f} devices",
    )


def _av_apps_rare(wb: Workbench) -> tuple[bool, str]:
    result = compute_malware(wb.observations, wb.data.vt_client, wb.data.catalog)
    fraction = result.devices_with_av_app / max(len(wb.observations), 1)
    return fraction <= 0.15, f"devices with an AV app: {fraction:.1%}"


def _app_classifier_high_f1(wb: Workbench) -> tuple[bool, str]:
    evaluation = wb.pipeline_result.app_evaluation
    f1 = max(cv.f1 for cv in evaluation.results.values())
    return f1 >= 0.97, f"best app-classifier F1 = {f1:.4f} (paper 0.9972)"


def _device_classifier_high_f1(wb: Workbench) -> tuple[bool, str]:
    evaluation = wb.pipeline_result.device_evaluation
    xgb = evaluation.results["XGB"]
    return xgb.f1 >= 0.9, f"XGB device F1 = {xgb.f1:.4f} (paper 0.9529)"


def _device_classifier_low_fpr(wb: Workbench) -> tuple[bool, str]:
    xgb = wb.pipeline_result.device_evaluation.results["XGB"]
    return (
        xgb.false_positive_rate <= 0.1,
        f"XGB FPR = {xgb.false_positive_rate:.4f} (paper 0.0141)",
    )


def _organic_majority(wb: Workbench) -> tuple[bool, str]:
    organic, dedicated = wb.pipeline_result.organic_split()
    fraction = organic / max(organic + dedicated, 1)
    return (
        0.5 <= fraction <= 0.9 and dedicated > 0,
        f"organic-indicative: {fraction:.0%} (paper 69.1%), "
        f"promotion-only: {dedicated} (paper 55)",
    )


def _organic_workers_detected(wb: Workbench) -> tuple[bool, str]:
    workers = wb.pipeline_result.worker_verdicts()
    low = [v for v in workers if v.app_suspiciousness < 0.5]
    detected = sum(1 for v in low if v.predicted_worker)
    rate = detected / len(low) if low else 1.0
    return (
        rate >= 0.75,
        f"low-suspiciousness (novice/organic) workers detected: {rate:.0%} "
        f"({detected}/{len(low)})",
    )


FINDINGS: tuple[Finding, ...] = (
    Finding("F1", "§6.2", "Workers register far more Gmail accounts", _accounts_more_gmail),
    Finding("F2", "§6.2", "Workers have less account-type diversity", _accounts_less_diversity),
    Finding("F3", "§6.3", "Installed-app counts are similar across groups", _installed_counts_similar),
    Finding("F4", "§6.3", "ANOVA on installed-app counts is not significant", _installed_anova_not_significant),
    Finding("F5", "§6.3", "Workers review far more of their installed apps", _workers_review_more_installed),
    Finding("F6", "§6.3", "Workers post orders of magnitude more total reviews", _workers_total_reviews_dominant),
    Finding("F7", "§6.3", "Workers review much sooner after install", _workers_review_sooner),
    Finding("F8", "§6.3", "About a third of worker reviews land within one day", _worker_fast_review_mass),
    Finding("F9", "§6.3", "Worker devices have significantly more stopped apps", _workers_stop_more_apps),
    Finding("F10", "§6.3", "Worker app churn is significantly higher", _worker_churn_higher),
    Finding("F11", "§6.3", "Daily used-app counts overlap substantially", _daily_use_overlaps),
    Finding("F12", "§6.4", "Malware spreads across more worker devices", _malware_spreads_on_worker_devices),
    Finding("F13", "§6.4", "Few participants install anti-virus apps", _av_apps_rare),
    Finding("F14", "§7.2", "App classifier reaches very high F1", _app_classifier_high_f1),
    Finding("F15", "§8.2", "Device classifier reaches high F1", _device_classifier_high_f1),
    Finding("F16", "§8.2", "Device classifier keeps a low false-positive rate", _device_classifier_low_fpr),
    Finding("F17", "§8.2", "Most worker devices are organic-indicative", _organic_majority),
    Finding("F18", "§8.2", "Even low-suspiciousness workers are detected", _organic_workers_detected),
)


def check_findings(workbench: Workbench) -> list[FindingResult]:
    """Evaluate every registered finding against one workbench."""
    results = []
    for finding in FINDINGS:
        holds, measured = finding.check(workbench)
        results.append(FindingResult(finding=finding, holds=holds, measured=measured))
    return results
