"""Property-style invariants over simulated device histories.

These are the consistency guarantees the analyses rely on: event
ordering per app, session/window sanity, review-time coherence.
Checked over the shared small study (hundreds of devices-days of
generated behaviour)."""

import numpy as np

from repro.simulation.events import EventType


def _events_by_package(device):
    out = {}
    for event in device.events:
        out.setdefault(event.package, []).append(event)
    return out


class TestEventOrdering:
    def test_first_study_event_per_new_package_is_install(self, study):
        """Any package first seen during the study must start its event
        history with an INSTALL (uninstall/foreground of an unknown
        package would corrupt the delta stream)."""
        for participant in study.participants:
            device = participant.device
            preinstalled = {
                rec.package for rec in device.installed.values() if rec.preinstalled
            }
            per_package = _events_by_package(device)
            for package, events in per_package.items():
                if package in preinstalled:
                    continue  # pre-installed apps never emit an INSTALL
                ordered = sorted(events)
                study_events = [e for e in ordered if e.timestamp >= 0.0]
                pre_study = [e for e in ordered if e.timestamp < 0.0]
                if not pre_study and study_events:
                    assert study_events[0].event_type is EventType.INSTALL, (
                        f"{device.device_id}:{package}"
                    )

    def test_no_double_install_without_uninstall(self, study):
        for participant in study.participants[:30]:
            per_package = _events_by_package(participant.device)
            for package, events in per_package.items():
                installed = False
                for event in sorted(events):
                    if event.event_type is EventType.INSTALL:
                        assert not installed, f"double install of {package}"
                        installed = True
                    elif event.event_type is EventType.UNINSTALL:
                        assert installed, f"uninstall before install of {package}"
                        installed = False

    def test_uninstalled_packages_not_installed(self, study):
        for participant in study.participants[:30]:
            device = participant.device
            for timestamp, package in device.uninstalled_log:
                record = device.installed.get(package)
                if record is not None:
                    # Re-installed later: its install time must be after
                    # the uninstall.
                    assert record.install_time > timestamp

    def test_sessions_reference_real_installs(self, study):
        """Every foreground session started while the app was installed
        (it may have been uninstalled later)."""
        for participant in study.participants[:20]:
            device = participant.device
            known = set(device.installed) | {p for _, p in device.uninstalled_log}
            for session in device.sessions:
                assert session.package in known

    def test_review_events_nonconcurrent_duplicates(self, study):
        """Review events for one device/app pair have distinct times."""
        for participant in study.participants[:30]:
            per_package = _events_by_package(participant.device)
            for package, events in per_package.items():
                review_times = [
                    e.timestamp for e in events if e.event_type is EventType.REVIEW
                ]
                assert len(review_times) == len(set(review_times))


class TestStoreCoherence:
    def test_store_reviews_match_device_events(self, study):
        """Every REVIEW event should correspond to a live or replaced
        review in the store from one of the device's accounts."""
        for participant in study.participants[:15]:
            device = participant.device
            gids = {a.google_id for a in device.gmail_accounts()}
            reviewed_events = {
                e.package
                for e in device.events
                if e.event_type is EventType.REVIEW
            }
            reviewed_store = set()
            for gid in gids:
                reviewed_store.update(
                    r.app_package for r in study.review_store.reviews_by_google_id(gid)
                )
            # Store may hold more (replaced reviews drop events never
            # fire); every event package should appear in the store
            # unless its review was later replaced by the same account.
            missing = reviewed_events - reviewed_store
            assert len(missing) <= max(2, len(reviewed_events) // 10)

    def test_campaign_delivered_counts_bounded(self, study):
        for campaign in study.board.campaigns():
            assert 0 <= campaign.delivered_installs <= campaign.target_installs
            assert 0 <= campaign.delivered_reviews <= campaign.target_reviews
