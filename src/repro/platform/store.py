"""In-memory document store with Mongo-like query operators.

The paper's backend persists snapshots into MongoDB (§3).  This store
provides the same access pattern for the analysis code: named
collections of documents, a small operator language (``$eq``, ``$ne``,
``$gt``, ``$gte``, ``$lt``, ``$lte``, ``$in``, ``$exists``), and
single-field indexes for the hot lookups (by install id).

Two interchangeable backends implement the same ``find`` / ``find_one``
/ ``count`` / ``distinct`` API:

* :class:`Collection` — one python dict per document, per-document
  query matching, hash indexes.  The historical path.
* :class:`ColumnarCollection` — documents live in a
  :class:`~repro.frames.ColumnFrame` (typed when the collection name
  has a declared schema, generic otherwise); queries compile to
  vectorized boolean masks and equality indexes are column-sorted
  position lists probed by bisection.

The backend is chosen per :class:`DocumentStore` (``backend=`` or the
``REPRO_STORE_BACKEND`` environment variable) and is contractually
invisible: both return the same documents in the same order for any
query (see ``tests/platform/test_store_query.py``).
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Any, Callable, Iterator

from ..frames import SCHEMA_BY_COLLECTION, ColumnFrame, mask_for
from ..frames.frame import SchemaMismatchError

__all__ = ["DocumentStore", "Collection", "ColumnarCollection"]

#: Sentinel distinguishing "key absent" from an explicit ``None`` value,
#: so ``$exists`` tests presence while every other operator keeps the
#: historical reads-as-None behaviour for missing keys.
_MISSING = object()


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda value, operand: value == operand,
    "$ne": lambda value, operand: value != operand,
    "$gt": lambda value, operand: value is not None and value > operand,
    "$gte": lambda value, operand: value is not None and value >= operand,
    "$lt": lambda value, operand: value is not None and value < operand,
    "$lte": lambda value, operand: value is not None and value <= operand,
    "$in": lambda value, operand: value in operand,
    "$exists": lambda value, operand: (value is not _MISSING) == bool(operand),
}


def _matches(document, query: dict) -> bool:
    for fieldname, condition in query.items():
        raw = document.get(fieldname, _MISSING)
        value = None if raw is _MISSING else raw
        if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
            for op, operand in condition.items():
                handler = _OPERATORS.get(op)
                if handler is None:
                    raise ValueError(f"unknown query operator {op!r}")
                if not handler(raw if op == "$exists" else value, operand):
                    return False
        elif value != condition:
            return False
    return True


class Collection:
    """One named collection of dict documents (the historical backend)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._documents: list[dict] = []
        self._indexes: dict[str, dict[Any, list[int]]] = {}

    def __len__(self) -> int:
        return len(self._documents)

    def insert(self, document: dict) -> None:
        if not isinstance(document, dict):
            raise TypeError("documents must be dicts")
        position = len(self._documents)
        self._documents.append(document)
        for fieldname, index in self._indexes.items():
            index[document.get(fieldname)].append(position)

    def insert_many(self, documents) -> int:
        count = 0
        for document in documents:
            self.insert(document)
            count += 1
        return count

    def create_index(self, fieldname: str) -> None:
        if fieldname in self._indexes:
            return
        index: dict[Any, list[int]] = defaultdict(list)
        for position, document in enumerate(self._documents):
            index[document.get(fieldname)].append(position)
        self._indexes[fieldname] = index

    def _candidates(self, query: dict) -> Iterator[dict]:
        # Use an index when the query has an equality match on an
        # indexed field; otherwise scan.
        for fieldname, index in self._indexes.items():
            condition = query.get(fieldname)
            if condition is not None and not isinstance(condition, dict):
                for position in index.get(condition, ()):
                    yield self._documents[position]
                return
        yield from self._documents

    def find(self, query: dict | None = None) -> list[dict]:
        query = query or {}
        return [doc for doc in self._candidates(query) if _matches(doc, query)]

    def find_one(self, query: dict | None = None) -> dict | None:
        query = query or {}
        for doc in self._candidates(query):
            if _matches(doc, query):
                return doc
        return None

    def count(self, query: dict | None = None) -> int:
        if not query:
            return len(self._documents)
        return sum(1 for doc in self._candidates(query) if _matches(doc, query))

    def distinct(self, fieldname: str, query: dict | None = None) -> list:
        query = query or {}
        seen: set = set()
        for doc in self._candidates(query):
            if not _matches(doc, query):
                continue
            value = doc.get(fieldname)
            if isinstance(value, (list, tuple)):
                seen.update(value)
            else:
                seen.add(value)
        seen.discard(None)
        return sorted(seen, key=repr)


class _SortedColumnIndex:
    """Equality index over one sortable column: positions ordered by
    key (ties in insertion order), probed with bisection.

    Rebuilt lazily after inserts — bulk ingest pays one O(n log n) sort
    at the first post-insert lookup instead of O(n) per insert.
    """

    __slots__ = ("_keys", "_positions", "_numeric", "_dirty")

    def __init__(self, numeric: bool) -> None:
        self._keys: list = []
        self._positions: list[int] = []
        self._numeric = numeric
        self._dirty = True

    def invalidate(self) -> None:
        self._dirty = True

    def _rebuild(self, values: list) -> None:
        order = sorted(range(len(values)), key=values.__getitem__)
        self._positions = order
        self._keys = [values[i] for i in order]
        self._dirty = False

    def lookup(self, values: list, operand) -> list[int]:
        # Operands that cannot compare against the column never match
        # (the dict backend's hash probe likewise finds no bucket).
        if self._numeric:
            if not isinstance(operand, (int, float)):
                return []
        elif not isinstance(operand, str):
            return []
        if self._dirty:
            self._rebuild(values)
        lo = bisect_left(self._keys, operand)
        hi = bisect_right(self._keys, operand)
        return self._positions[lo:hi]


class ColumnarCollection:
    """One named collection backed by a :class:`ColumnFrame`.

    Same public API and same results as :class:`Collection`; queries
    evaluate as vectorized masks over whole columns.  A collection whose
    name has a declared schema stores typed columns; if a document ever
    fails the schema (only possible outside the server's validated
    ingest path), the frame degrades once to generic columns so the
    store keeps the dict backend's accept-anything behaviour.
    """

    def __init__(self, name: str, schema=None) -> None:
        self.name = name
        self.frame = ColumnFrame(schema)
        self._indexes: dict[str, _SortedColumnIndex | dict[Any, list[int]]] = {}

    def __len__(self) -> int:
        return len(self.frame)

    # -- writes ---------------------------------------------------------
    def insert(self, document: dict) -> None:
        if not isinstance(document, dict):
            raise TypeError("documents must be dicts")
        try:
            self.frame.append(document)
        except SchemaMismatchError:
            self._degrade_to_generic()
            self.frame.append(document)
        for fieldname, index in self._indexes.items():
            if isinstance(index, _SortedColumnIndex):
                index.invalidate()
            else:
                index[document.get(fieldname)].append(len(self.frame) - 1)

    def insert_many(self, documents) -> int:
        count = 0
        for document in documents:
            self.insert(document)
            count += 1
        return count

    def _degrade_to_generic(self) -> None:
        generic = ColumnFrame()
        for i in range(len(self.frame)):
            generic.append(self.frame.row(i))
        self.frame = generic
        # Sorted indexes probe schema-typed columns; rebuild as hash maps.
        for fieldname in list(self._indexes):
            del self._indexes[fieldname]
            self.create_index(fieldname)

    # -- indexes --------------------------------------------------------
    def create_index(self, fieldname: str) -> None:
        if fieldname in self._indexes:
            return
        schema = self.frame.schema
        if schema is not None and fieldname in schema and schema.field(fieldname).sortable:
            index: _SortedColumnIndex | dict = _SortedColumnIndex(
                numeric=schema.field(fieldname).kind in ("float", "int")
            )
        else:
            index = defaultdict(list)
            for position, value in enumerate(self.frame.cells(fieldname)):
                index[value].append(position)
        self._indexes[fieldname] = index

    def _candidate_positions(self, query: dict) -> list[int] | None:
        """Positions to check, or ``None`` for "evaluate the full mask"
        (mirrors the dict backend's index-selection rule)."""
        for fieldname, index in self._indexes.items():
            condition = query.get(fieldname)
            if condition is not None and not isinstance(condition, dict):
                if isinstance(index, _SortedColumnIndex):
                    return index.lookup(self.frame.values(fieldname), condition)
                return list(index.get(condition, ()))
        return None

    # -- reads ----------------------------------------------------------
    def _matching_positions(self, query: dict) -> Iterator[int]:
        positions = self._candidate_positions(query)
        if positions is None:
            mask = mask_for(self.frame, query)
            yield from (int(i) for i in mask.nonzero()[0])
            return
        for position in positions:
            if _matches(self.frame.view(position), query):
                yield position

    def find(self, query: dict | None = None) -> list[dict]:
        query = query or {}
        return [self.frame.row(i) for i in self._matching_positions(query)]

    def find_one(self, query: dict | None = None) -> dict | None:
        for position in self._matching_positions(query or {}):
            return self.frame.row(position)
        return None

    def find_views(self, query: dict | None = None) -> list:
        """Like :meth:`find`, but zero-copy :class:`FrameRow` views."""
        return [self.frame.view(i) for i in self._matching_positions(query or {})]

    def count(self, query: dict | None = None) -> int:
        if not query:
            return len(self.frame)
        return sum(1 for _ in self._matching_positions(query))

    def distinct(self, fieldname: str, query: dict | None = None) -> list:
        seen: set = set()
        for position in self._matching_positions(query or {}):
            value = self.frame.cell_or_none(fieldname, position)
            if isinstance(value, (list, tuple)):
                seen.update(value)
            else:
                seen.add(value)
        seen.discard(None)
        return sorted(seen, key=repr)


class DocumentStore:
    """A set of named collections (the Mongo database).

    ``backend`` selects the collection implementation: ``"columnar"``
    (the default — typed :class:`ColumnFrame` storage with vectorized
    queries) or ``"dict"`` (one python dict per document).  The
    ``REPRO_STORE_BACKEND`` environment variable overrides the default
    for processes that cannot pass the argument (CLI, CI).
    """

    def __init__(self, backend: str | None = None) -> None:
        if backend is None:
            backend = os.environ.get("REPRO_STORE_BACKEND", "columnar")
        if backend not in ("dict", "columnar"):
            raise ValueError(f"unknown store backend {backend!r}")
        self.backend = backend
        self._collections: dict[str, Collection | ColumnarCollection] = {}

    def collection(self, name: str) -> Collection | ColumnarCollection:
        if name not in self._collections:
            if self.backend == "columnar":
                self._collections[name] = ColumnarCollection(
                    name, schema=SCHEMA_BY_COLLECTION.get(name)
                )
            else:
                self._collections[name] = Collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection | ColumnarCollection:
        return self.collection(name)

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def total_documents(self) -> int:
        return sum(len(c) for c in self._collections.values())
