"""Ablation: the KNN K sweep (both tables note "KNN achieved best
performance for K = 5")."""

from repro.experiments.common import ExperimentReport
from repro.ml import KNeighborsClassifier
from repro.ml.tuning import grid_search
from repro.reporting import render_table


def test_ablation_knn_k(benchmark, workbench, pipeline_result, emit):
    dataset = pipeline_result.device_dataset
    grid = {"n_neighbors": [1, 3, 5, 9, 15, 25]}
    result = benchmark.pedantic(
        grid_search,
        args=(KNeighborsClassifier(), grid, dataset.X, dataset.y),
        kwargs={"n_splits": 10, "resample": "smote", "random_state": 0},
        rounds=1,
        iterations=1,
    )
    rows = [(params["n_neighbors"], cv.f1, cv.auc) for params, cv in sorted(
        result.entries, key=lambda e: e[0]["n_neighbors"]
    )]
    report = ExperimentReport(
        "ablation_knn_k",
        "KNN K sweep on the device classifier (paper: K=5 best)",
        lines=[render_table(["K", "F1", "AUC"], rows)],
        metrics={f"f1_k{params['n_neighbors']}": cv.f1 for params, cv in result.entries},
    )
    emit(report)
    best_k = result.best_params["n_neighbors"]
    # The paper found a small-but-not-1 K optimal; large K oversmooths
    # the minority regular class.
    assert best_k in (3, 5, 9)
    assert report.metrics["f1_k5"] >= report.metrics["f1_k25"]
