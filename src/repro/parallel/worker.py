"""Worker-side job wrapper: metrics capture and nested-parallelism guard.

``run_job`` is the function a :class:`~repro.parallel.executor.ProcessExecutor`
actually submits.  It does two things the executor contract needs:

- **Metrics capture.**  When the parent process had a live
  :mod:`repro.obs` registry, each worker runs its job against a fresh
  private registry and ships a picklable snapshot back; the parent
  merges snapshots in submission order, so ``python -m repro profile``
  still sees per-fold fit/predict timings when CV folds ran in child
  processes.  (Under ``fork`` the child inherits the parent's registry
  *object*, but writes to that copy would be lost with the process —
  the explicit snapshot round-trip works for every start method.)

- **Nested-parallelism guard.**  While a job runs, this module's
  ``_IN_WORKER`` flag is set, and
  :func:`repro.parallel.executor.resolve_n_jobs` then pins every nested
  ``n_jobs`` to 1.  A forest fit inside a parallel CV fold therefore
  never forks grandchildren.
"""

from __future__ import annotations

from typing import Any, Callable

from .. import obs
from ..obs.metrics import MetricsRegistry

__all__ = ["run_job", "in_worker"]

_IN_WORKER = False


def in_worker() -> bool:
    """True while this process is executing a parallel job."""
    return _IN_WORKER


def run_job(
    fn: Callable[..., Any],
    args: tuple,
    capture_metrics: bool,
) -> tuple[Any, dict | None]:
    """Execute ``fn(*args)``; return ``(result, metrics_snapshot | None)``."""
    global _IN_WORKER
    previous = _IN_WORKER
    _IN_WORKER = True
    try:
        if not capture_metrics:
            return fn(*args), None
        registry = MetricsRegistry()
        obs.configure(metrics=True, tracing=False, registry=registry)
        try:
            result = fn(*args)
        finally:
            obs.reset()
        return result, registry.snapshot()
    finally:
        _IN_WORKER = previous
