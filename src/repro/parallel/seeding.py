"""Seed derivation for deterministic fan-out.

The parallel layer's contract is that every RNG seed a job will consume
is derived *before* the job is handed to an executor, from a single
well-defined stream, so the result is bit-identical at any worker
count.  Two derivation helpers cover the two situations the codebase
has:

``spawn_seeds``
    Statistically independent streams for *new* top-level workloads
    (the bench harness, ad-hoc fan-outs), via
    ``numpy.random.SeedSequence.spawn`` — the recommended numpy
    mechanism for parallel stream splitting.

``draw_seeds``
    Seeds drawn from an *existing* ``numpy.random.Generator`` in its
    serial consumption order.  ``cross_validate`` and
    ``RandomForestClassifier`` use this so that a run with ``n_jobs=8``
    reproduces, byte for byte, the output the serial code path has
    produced since the seed release (the per-fold / per-tree seeds keep
    their original lineage from ``random_state``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds", "draw_seeds"]


def spawn_seeds(root_seed: int, n: int) -> list[int]:
    """``n`` independent integer seeds derived from ``root_seed``.

    Deterministic in ``root_seed``: the same root always yields the same
    children, in the same order, regardless of how many workers later
    consume them.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    children = np.random.SeedSequence(root_seed).spawn(n)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def draw_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """``n`` integer seeds drawn sequentially from ``rng``.

    Consumes exactly ``n`` draws of ``rng.integers(0, 2**31 - 1)`` — the
    idiom the serial fit loops used — so callers that pre-draw seeds for
    fan-out keep byte-identical outputs with their historical serial
    behaviour.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    return [int(rng.integers(0, 2**31 - 1)) for _ in range(n)]
