"""Tests for descriptive summaries and ECDF helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.statstests import Summary, ecdf, histogram_counts, summarize


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == pytest.approx(3.0)
        assert s.median == pytest.approx(3.0)
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.total == pytest.approx(15.0)

    def test_paper_style_format(self):
        s = summarize([1.0, 2.0, 3.0])
        text = s.paper_style()
        assert "M =" in text and "SD =" in text and "max =" in text

    def test_nonfinite_dropped(self):
        s = summarize([1.0, float("nan"), 2.0, float("inf")])
        assert s.n == 2

    def test_empty_summary(self):
        s = summarize([])
        assert s.n == 0
        assert math.isnan(s.mean)
        assert s.total == 0.0

    def test_single_value_zero_std(self):
        s = summarize([42.0])
        assert s.std == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_property_order_invariants(self, values):
        s = summarize(values)
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
        assert s.minimum <= s.mean <= s.maximum


class TestEcdf:
    def test_sorted_probabilities(self, rng):
        values, probs = ecdf(rng.normal(0, 1, 50))
        assert np.all(np.diff(values) >= 0)
        assert probs[0] == pytest.approx(1 / 50)
        assert probs[-1] == pytest.approx(1.0)

    def test_empty(self):
        values, probs = ecdf([])
        assert values.size == 0 and probs.size == 0


class TestHistogram:
    def test_counts_total(self, rng):
        data = rng.uniform(0, 10, 200)
        counts = histogram_counts(data, [0, 2, 4, 6, 8, 10])
        assert counts.sum() == 200

    def test_known_binning(self):
        counts = histogram_counts([0.5, 1.5, 1.6, 2.5], [0, 1, 2, 3])
        assert counts.tolist() == [1, 2, 1]
